(* Tests for the multicore batch runtime: worker-count determinism,
   result ordering, and differential equality against the single-call
   Align API on both engines. *)
module Align = Dphls.Align
module Batch = Dphls.Batch
module Rng = Dphls_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let dna_gen len_lo len_hi =
  QCheck.Gen.(
    string_size
      ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ])
      (int_range len_lo len_hi))

let pairs_arbitrary n =
  QCheck.make
    ~print:(fun pairs ->
      String.concat ";"
        (Array.to_list (Array.map (fun (q, r) -> q ^ "/" ^ r) pairs)))
    QCheck.Gen.(array_size (return n) (pair (dna_gen 1 40) (dna_gen 1 40)))

let digest results = Digest.string (Marshal.to_string results [])

(* Determinism: the same 200-pair batch must come back byte-identical
   at 1, 4, and 8 workers. *)
let prop_worker_count_invariance =
  QCheck.Test.make ~name:"align_all workers 1/4/8 byte-identical" ~count:2
    (pairs_arbitrary 200)
    (fun pairs ->
      let r1 = Batch.align_all ~workers:1 pairs in
      let r4 = Batch.align_all ~workers:4 pairs in
      let r8 = Batch.align_all ~workers:8 pairs in
      digest r1 = digest r4 && digest r4 = digest r8)

(* Ordering: self-alignments of shuffled lengths finish in arbitrary
   order across workers, but result [i] must still belong to input [i]
   (global self-alignment score is exactly 2 * length). *)
let test_ordering_shuffled_costs () =
  let rng = Rng.create 99 in
  let lengths = Array.init 60 (fun i -> 1 + i) in
  Rng.shuffle rng lengths;
  let pairs =
    Array.map (fun len -> (String.make len 'A', String.make len 'A')) lengths
  in
  let results, stats = Batch.align_all_report ~workers:6 pairs in
  Alcotest.(check int) "jobs reported" 60
    stats.Dphls_host.Pool.report.Dphls_host.Scheduler.jobs;
  Array.iteri
    (fun i (a : Align.alignment) ->
      Alcotest.(check int)
        (Printf.sprintf "pair %d (len %d)" i lengths.(i))
        (2 * lengths.(i)) a.Align.score)
    results

(* Differential: every batched result equals the corresponding
   single-call Align result, for the golden engine and Systolic 16. *)
let test_differential_vs_single_call () =
  let rng = Rng.create 2026 in
  let pairs =
    Array.init 30 (fun _ ->
        ( Dphls_alphabet.Dna.to_string
            (Dphls_alphabet.Dna.random rng (1 + Rng.int rng 40)),
          Dphls_alphabet.Dna.to_string
            (Dphls_alphabet.Dna.random rng (1 + Rng.int rng 40)) ))
  in
  List.iter
    (fun (engine, engine_name) ->
      List.iter
        (fun (kind, kind_name) ->
          let batched = Batch.align_all ~engine ~kind ~workers:4 pairs in
          Array.iteri
            (fun i ((query, reference) as _p) ->
              let solo = Batch.align_one ~engine kind ~query ~reference in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s pair %d" engine_name kind_name i)
                true
                (batched.(i) = solo))
            pairs)
        [
          (Batch.Global, "global");
          (Batch.Global_affine, "global-affine");
          (Batch.Local, "local");
          (Batch.Semi_global, "semi-global");
        ])
    [ (Align.Golden, "golden"); (Align.Systolic 16, "systolic16") ]

(* Protein kind routes to kernel #15. *)
let test_protein_kind () =
  let pairs = [| ("WWWW", "WWWW"); ("MKV", "MKV") |] in
  let results = Batch.align_all ~kind:Batch.Protein_local ~workers:2 pairs in
  let solo = Align.protein_local ~query:"WWWW" ~reference:"WWWW" () in
  Alcotest.(check int) "blosum score via batch" solo.Align.score
    results.(0).Align.score

(* Streaming iter must visit every pair exactly once, in order, with
   the same alignments as align_all, even when the chunk size forces
   several pool dispatches. *)
let test_iter_streaming_matches_align_all () =
  let rng = Rng.create 5 in
  let pairs =
    Array.init 23 (fun _ ->
        ( Dphls_alphabet.Dna.to_string
            (Dphls_alphabet.Dna.random rng (1 + Rng.int rng 20)),
          Dphls_alphabet.Dna.to_string
            (Dphls_alphabet.Dna.random rng (1 + Rng.int rng 20)) ))
  in
  let reference = Batch.align_all ~workers:3 pairs in
  let seen = ref [] in
  Batch.iter ~workers:3 ~chunk:4
    ~f:(fun idx ~query ~reference:_ a -> seen := (idx, query, a) :: !seen)
    (Array.to_seq pairs);
  let seen = List.rev !seen in
  Alcotest.(check int) "all pairs visited" 23 (List.length seen);
  List.iteri
    (fun i (idx, query, a) ->
      Alcotest.(check int) "indices in order" i idx;
      Alcotest.(check string) "query matches input" (fst pairs.(i)) query;
      Alcotest.(check bool) "alignment matches align_all" true
        (a = reference.(i)))
    seen

(* FASTA pair file end-to-end through the streaming reader. *)
let test_iter_fasta_file () =
  let path = "data/batch_pairs.fa" in
  let records = Dphls_io.Fasta.read_file path in
  Alcotest.(check int) "bundled file has 8 records" 8 (List.length records);
  let count = ref 0 in
  Batch.iter_fasta_file ~workers:2 ~chunk:2 ~path
    ~f:(fun idx q r a ->
      Alcotest.(check string)
        "query id lines up"
        (Printf.sprintf "q%d" idx)
        q.Dphls_io.Fasta.id;
      Alcotest.(check string)
        "reference id lines up"
        (Printf.sprintf "r%d" idx)
        r.Dphls_io.Fasta.id;
      let solo =
        Batch.align_one Batch.Global ~query:q.Dphls_io.Fasta.sequence
          ~reference:r.Dphls_io.Fasta.sequence
      in
      Alcotest.(check bool) "matches single call" true (a = solo);
      incr count)
    ();
  Alcotest.(check int) "four pairs" 4 !count

let test_odd_fasta_rejected () =
  let path = Filename.temp_file "dphls_odd" ".fa" in
  Dphls_io.Fasta.write_file path
    [ { Dphls_io.Fasta.id = "only"; description = ""; sequence = "ACGT" } ];
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.(check bool) "odd record count rejected" true
        (try
           Batch.iter_fasta_file ~workers:1 ~path ~f:(fun _ _ _ _ -> ()) ();
           false
         with Failure _ -> true))

(* Measured-vs-modeled scaling points are well-formed (on a 1-core CI
   box the measured speedup can be anything positive; the modeled side
   must be the linear N_K law). *)
let test_scaling_points () =
  let pairs =
    Array.init 12 (fun i -> (String.make (8 + i) 'C', String.make 12 'C'))
  in
  let points = Batch.scaling ~workers:[ 2; 4 ] pairs in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter2
    (fun w (p : Dphls_host.Throughput.scaling_point) ->
      Alcotest.(check int) "workers echoed" w p.Dphls_host.Throughput.workers;
      Alcotest.(check (float 1e-9))
        "modeled speedup is linear N_K"
        (float_of_int w) p.Dphls_host.Throughput.modeled_speedup;
      Alcotest.(check bool) "measured speedup positive" true
        (p.Dphls_host.Throughput.measured_speedup > 0.0);
      Alcotest.(check (float 1e-9))
        "efficiency = measured / modeled"
        (p.Dphls_host.Throughput.measured_speedup /. float_of_int w)
        p.Dphls_host.Throughput.efficiency)
    [ 2; 4 ] points

let suite =
  [
    qtest prop_worker_count_invariance;
    Alcotest.test_case "ordering under shuffled costs" `Quick
      test_ordering_shuffled_costs;
    Alcotest.test_case "differential vs single call" `Quick
      test_differential_vs_single_call;
    Alcotest.test_case "protein kind" `Quick test_protein_kind;
    Alcotest.test_case "iter streaming" `Quick
      test_iter_streaming_matches_align_all;
    Alcotest.test_case "iter fasta file" `Quick test_iter_fasta_file;
    Alcotest.test_case "odd fasta rejected" `Quick test_odd_fasta_rejected;
    Alcotest.test_case "scaling points" `Quick test_scaling_points;
  ]
