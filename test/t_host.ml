(* Tests for the host runtime: throughput arithmetic, the channel
   scheduler (N_B blocks behind one arbiter), and the domain pool that
   realizes N_K parallelism for real. *)
module Throughput = Dphls_host.Throughput
module Scheduler = Dphls_host.Scheduler
module Pool = Dphls_host.Pool

let test_throughput_arithmetic () =
  (* 1000 cycles at 250 MHz with 4 parallel units: 1e6 aligns/s *)
  Alcotest.(check (float 1.0)) "alignments/s" 1.0e6
    (Throughput.alignments_per_sec ~cycles_per_alignment:1000.0 ~freq_mhz:250.0
       ~n_b:2 ~n_k:2);
  Alcotest.(check (float 1.0)) "cells/s" 6.5536e10
    (Throughput.cells_per_sec ~cycles_per_alignment:1000.0 ~freq_mhz:250.0 ~n_b:2
       ~n_k:2 ~cells:65536)

let test_iso_cost () =
  (* a $3.06/h instance scaled to the $1.65/h reference loses ~46% *)
  let scaled =
    Throughput.iso_cost ~throughput:100.0 ~cost_per_hour:3.06
      ~reference_cost_per_hour:1.65
  in
  Alcotest.(check (float 0.1)) "iso-cost" 53.9 scaled

let test_job_for_rounding () =
  let j = Scheduler.job_for ~qry_len:10 ~ref_len:10 ~compute:100 ~path_len:5 ~bytes_per_cycle:8 in
  Alcotest.(check int) "transfer in" 3 j.Scheduler.transfer_in;
  Alcotest.(check int) "transfer out" 2 j.Scheduler.transfer_out;
  Alcotest.(check int) "compute" 100 j.Scheduler.compute

let job ~t_in ~comp ~t_out =
  { Scheduler.transfer_in = t_in; compute = comp; transfer_out = t_out }

let test_single_job () =
  let r = Scheduler.run_channel ~n_b:1 [ job ~t_in:10 ~comp:100 ~t_out:5 ] in
  Alcotest.(check int) "makespan" 115 r.Scheduler.makespan;
  Alcotest.(check int) "arbiter busy" 15 r.Scheduler.arbiter_busy;
  Alcotest.(check int) "block busy" 100 r.Scheduler.block_busy

let test_one_block_serializes () =
  let jobs = List.init 4 (fun _ -> job ~t_in:10 ~comp:100 ~t_out:5) in
  let r = Scheduler.run_channel ~n_b:1 jobs in
  (* with one block, jobs can't overlap compute *)
  Alcotest.(check bool) "makespan at least serial compute" true
    (r.Scheduler.makespan >= 4 * 100)

let test_blocks_overlap_compute () =
  let jobs = List.init 4 (fun _ -> job ~t_in:10 ~comp:100 ~t_out:5) in
  let serial = Scheduler.run_channel ~n_b:1 jobs in
  let parallel = Scheduler.run_channel ~n_b:4 jobs in
  Alcotest.(check bool) "4 blocks beat 1" true
    (parallel.Scheduler.makespan < serial.Scheduler.makespan);
  (* dominated by the pipeline of transfers + one compute *)
  Alcotest.(check bool) "near-ideal overlap" true
    (parallel.Scheduler.makespan <= (4 * 15) + 100 + 5)

let test_bandwidth_bound_flag () =
  (* transfers dominate: arbiter saturates *)
  let jobs = List.init 20 (fun _ -> job ~t_in:100 ~comp:10 ~t_out:100) in
  let r = Scheduler.run_channel ~n_b:8 jobs in
  Alcotest.(check bool) "bandwidth bound" true r.Scheduler.bandwidth_bound;
  (* compute dominates: arbiter mostly idle *)
  let jobs2 = List.init 20 (fun _ -> job ~t_in:1 ~comp:1000 ~t_out:1) in
  let r2 = Scheduler.run_channel ~n_b:2 jobs2 in
  Alcotest.(check bool) "compute bound" false r2.Scheduler.bandwidth_bound

let test_nb_scaling_near_linear () =
  (* the Fig 3 claim: throughput scales almost perfectly with N_B while
     the arbiter is under-utilized *)
  let mk n = List.init (n * 8) (fun _ -> job ~t_in:4 ~comp:400 ~t_out:2) in
  let t n_b =
    Scheduler.device_throughput ~n_k:1 ~n_b ~freq_mhz:250.0 (mk n_b)
  in
  let t1 = t 1 and t4 = t 4 and t8 = t 8 in
  Alcotest.(check bool) "4x within 15%" true (t4 /. t1 > 3.4);
  Alcotest.(check bool) "8x within 20%" true (t8 /. t1 > 6.4)

let test_utilizations_bounded () =
  let jobs = List.init 10 (fun _ -> job ~t_in:5 ~comp:50 ~t_out:5) in
  let r = Scheduler.run_channel ~n_b:3 jobs in
  Alcotest.(check bool) "arbiter util in [0,1]" true
    (r.Scheduler.arbiter_utilization >= 0.0 && r.Scheduler.arbiter_utilization <= 1.0);
  Alcotest.(check bool) "block util in [0,1]" true
    (r.Scheduler.block_utilization >= 0.0 && r.Scheduler.block_utilization <= 1.0)

let test_invalid_args () =
  Alcotest.(check bool) "n_b 0 rejected" true
    (try
       ignore (Scheduler.run_channel ~n_b:0 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive cycles rejected" true
    (try
       ignore
         (Throughput.alignments_per_sec ~cycles_per_alignment:0.0 ~freq_mhz:250.0
            ~n_b:1 ~n_k:1);
       false
     with Invalid_argument _ -> true)

(* ---- Pool ---- *)

let test_pool_empty_batch () =
  Pool.with_pool ~workers:3 (fun p ->
      let results, stats = Pool.run p (fun _ -> assert false) 0 in
      Alcotest.(check int) "no results" 0 (Array.length results);
      Alcotest.(check int) "no jobs" 0
        stats.Pool.report.Scheduler.jobs;
      Alcotest.(check int) "zero makespan" 0
        stats.Pool.report.Scheduler.makespan)

let test_pool_batch_smaller_than_workers () =
  Pool.with_pool ~workers:8 (fun p ->
      let results = Pool.map p (fun i -> i * i) 3 in
      Alcotest.(check (array int)) "squares" [| 0; 1; 4 |] results)

let test_pool_exception_propagates () =
  let p = Pool.create ~workers:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Alcotest.(check bool) "exception re-raised, no deadlock" true
        (try
           ignore (Pool.map ~chunk:1 p (fun i -> if i = 5 then failwith "boom" else i) 10);
           false
         with Failure msg -> msg = "boom");
      (* the pool must survive a failing batch *)
      let again = Pool.map p (fun i -> i + 1) 6 in
      Alcotest.(check (array int)) "pool usable after failure"
        [| 1; 2; 3; 4; 5; 6 |] again)

let test_pool_report_invariants () =
  Pool.with_pool ~workers:4 (fun p ->
      (* enough work per task for the timers to register *)
      let busy_work i =
        let acc = ref i in
        for k = 1 to 20_000 do
          acc := (!acc * 31 + k) land 0xFFFF
        done;
        !acc
      in
      let n = 50 in
      let results, stats = Pool.run ~chunk:3 p busy_work n in
      Alcotest.(check int) "all results" n (Array.length results);
      let r = stats.Pool.report in
      Alcotest.(check int) "jobs" n r.Scheduler.jobs;
      Alcotest.(check int) "one busy slot per worker" 4
        (Array.length stats.Pool.worker_busy_ns);
      Alcotest.(check bool) "block_busy <= workers * makespan" true
        (r.Scheduler.block_busy <= 4 * r.Scheduler.makespan);
      Array.iter
        (fun busy ->
          Alcotest.(check bool) "worker busy <= makespan" true
            (busy <= r.Scheduler.makespan))
        stats.Pool.worker_busy_ns;
      Alcotest.(check int) "block_busy is the per-worker sum"
        (Array.fold_left ( + ) 0 stats.Pool.worker_busy_ns)
        r.Scheduler.block_busy;
      Alcotest.(check bool) "utilizations in [0,1]" true
        (r.Scheduler.arbiter_utilization >= 0.0
        && r.Scheduler.arbiter_utilization <= 1.0
        && r.Scheduler.block_utilization >= 0.0
        && r.Scheduler.block_utilization <= 1.0))

let test_pool_map_seeded_deterministic () =
  let draw rng _i = Dphls_util.Rng.int rng 1_000_000 in
  let a =
    Pool.with_pool ~workers:1 (fun p -> Pool.map_seeded p ~seed:7 draw 40)
  in
  let b =
    Pool.with_pool ~workers:5 (fun p ->
        Pool.map_seeded ~chunk:1 p ~seed:7 draw 40)
  in
  let c =
    Pool.with_pool ~workers:3 (fun p ->
        Pool.map_seeded ~chunk:16 p ~seed:7 draw 40)
  in
  Alcotest.(check (array int)) "1 worker == 5 workers chunk 1" a b;
  Alcotest.(check (array int)) "1 worker == 3 workers chunk 16" a c;
  let other =
    Pool.with_pool ~workers:1 (fun p -> Pool.map_seeded p ~seed:8 draw 40)
  in
  Alcotest.(check bool) "different seed differs" true (a <> other)

let test_pool_invalid_args () =
  Alcotest.(check bool) "workers 0 rejected" true
    (try
       ignore (Pool.create ~workers:0 ());
       false
     with Invalid_argument _ -> true);
  let p = Pool.create ~workers:2 () in
  Pool.shutdown p;
  Pool.shutdown p;  (* idempotent *)
  Alcotest.(check bool) "run after shutdown rejected" true
    (try
       ignore (Pool.map p (fun i -> i) 3);
       false
     with Invalid_argument _ -> true)

let test_pool_large_batch_ordering () =
  Pool.with_pool ~workers:6 (fun p ->
      let n = 500 in
      let results = Pool.map ~chunk:7 p (fun i -> 3 * i) n in
      Alcotest.(check bool) "all slots in input order" true
        (Array.for_all (fun x -> x >= 0) results
        && Array.to_list results = List.init n (fun i -> 3 * i)))

let suite =
  [
    Alcotest.test_case "throughput arithmetic" `Quick test_throughput_arithmetic;
    Alcotest.test_case "pool empty batch" `Quick test_pool_empty_batch;
    Alcotest.test_case "pool small batch" `Quick
      test_pool_batch_smaller_than_workers;
    Alcotest.test_case "pool exception propagates" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool report invariants" `Quick
      test_pool_report_invariants;
    Alcotest.test_case "pool seeded determinism" `Quick
      test_pool_map_seeded_deterministic;
    Alcotest.test_case "pool invalid args" `Quick test_pool_invalid_args;
    Alcotest.test_case "pool large batch ordering" `Quick
      test_pool_large_batch_ordering;
    Alcotest.test_case "iso cost" `Quick test_iso_cost;
    Alcotest.test_case "job rounding" `Quick test_job_for_rounding;
    Alcotest.test_case "single job" `Quick test_single_job;
    Alcotest.test_case "one block serializes" `Quick test_one_block_serializes;
    Alcotest.test_case "blocks overlap" `Quick test_blocks_overlap_compute;
    Alcotest.test_case "bandwidth bound flag" `Quick test_bandwidth_bound_flag;
    Alcotest.test_case "N_B scaling near linear" `Quick test_nb_scaling_near_linear;
    Alcotest.test_case "utilizations bounded" `Quick test_utilizations_bounded;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
  ]
