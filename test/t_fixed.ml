(* Tests for the fixed-point substrate (ap_int / ap_fixed analogs),
   including QCheck property tests on saturation and quantization. *)
module Ap_int = Dphls_fixed.Ap_int
module Ap_fixed = Dphls_fixed.Ap_fixed

let qtest = QCheck_alcotest.to_alcotest

let test_ap_int_range () =
  let s = Ap_int.spec 8 in
  Alcotest.(check int) "min" (-128) (Ap_int.min_value s);
  Alcotest.(check int) "max" 127 (Ap_int.max_value s);
  Alcotest.(check int) "clamp above" 127 (Ap_int.clamp s 1000);
  Alcotest.(check int) "clamp below" (-128) (Ap_int.clamp s (-1000));
  Alcotest.(check int) "sat add" 127 (Ap_int.add s 100 100);
  Alcotest.(check int) "sat sub" (-128) (Ap_int.sub s (-100) 100);
  Alcotest.(check int) "sat mul" 127 (Ap_int.mul s 16 16);
  Alcotest.(check int) "neg of min saturates" 127 (Ap_int.neg s (-128))

let test_ap_int_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Ap_int.spec: width out of [1,62]")
    (fun () -> ignore (Ap_int.spec 0));
  Alcotest.check_raises "width 63" (Invalid_argument "Ap_int.spec: width out of [1,62]")
    (fun () -> ignore (Ap_int.spec 63))

let test_bits_for () =
  Alcotest.(check int) "fits [-8,7] in 4" 4 (Ap_int.bits_for ~lo:(-8) ~hi:7).Ap_int.width;
  Alcotest.(check int) "[-9,7] needs 5" 5 (Ap_int.bits_for ~lo:(-9) ~hi:7).Ap_int.width

let test_ap_int_wide_mul_saturates () =
  (* Regression: at width 62 the native product of in-range operands
     wraps OCaml's 63-bit int; mul must saturate instead of wrapping. *)
  let s = Ap_int.spec 62 in
  let big = 1 lsl 40 in
  Alcotest.(check int) "pos*pos wraps -> max" (Ap_int.max_value s)
    (Ap_int.mul s big big);
  Alcotest.(check int) "neg*pos wraps -> min" (Ap_int.min_value s)
    (Ap_int.mul s (-big) big);
  Alcotest.(check int) "neg*neg wraps -> max" (Ap_int.max_value s)
    (Ap_int.mul s (-big) (-big));
  Alcotest.(check int) "min*max wraps -> min" (Ap_int.min_value s)
    (Ap_int.mul s (Ap_int.min_value s) (Ap_int.max_value s));
  (* in-range products are untouched *)
  Alcotest.(check int) "small product exact" (big * 4) (Ap_int.mul s big 4)

let test_checked_mul () =
  Alcotest.(check (option int)) "zero" (Some 0) (Ap_int.checked_mul 0 max_int);
  Alcotest.(check (option int)) "exact" (Some 12) (Ap_int.checked_mul 3 4);
  Alcotest.(check (option int)) "overflow detected" None
    (Ap_int.checked_mul (1 lsl 40) (1 lsl 40));
  Alcotest.(check (option int)) "min_int * -1 wraps" None
    (Ap_int.checked_mul min_int (-1));
  Alcotest.(check (option int)) "-1 * min_int wraps" None
    (Ap_int.checked_mul (-1) min_int)

let test_ap_fixed_wide_mul_saturates () =
  let s = Ap_fixed.spec ~width:62 ~frac:12 in
  let isp = Ap_fixed.int_spec s in
  let big = Ap_fixed.of_float s (float_of_int (1 lsl 30)) in
  Alcotest.(check int) "wide product saturates max" (Ap_int.max_value isp)
    (Ap_fixed.mul s big big);
  Alcotest.(check int) "wide product saturates min" (Ap_int.min_value isp)
    (Ap_fixed.mul s (-big) big)

let test_ap_fixed_of_float_edges () =
  let s = Ap_fixed.spec ~width:16 ~frac:8 in
  let isp = Ap_fixed.int_spec s in
  Alcotest.check_raises "nan rejected" (Invalid_argument "Ap_fixed.of_float: nan")
    (fun () -> ignore (Ap_fixed.of_float s Float.nan));
  Alcotest.(check int) "+inf saturates" (Ap_int.max_value isp)
    (Ap_fixed.of_float s Float.infinity);
  Alcotest.(check int) "-inf saturates" (Ap_int.min_value isp)
    (Ap_fixed.of_float s Float.neg_infinity);
  Alcotest.(check int) "huge finite saturates" (Ap_int.max_value isp)
    (Ap_fixed.of_float s 1e300);
  Alcotest.(check int) "huge negative finite saturates" (Ap_int.min_value isp)
    (Ap_fixed.of_float s (-1e300))

let prop_ap_int_always_in_range =
  QCheck.Test.make ~name:"ap_int ops stay in range" ~count:500
    QCheck.(triple (int_range 2 20) (int_range (-100000) 100000) (int_range (-100000) 100000))
    (fun (w, a, b) ->
      let s = Ap_int.spec w in
      let a = Ap_int.clamp s a and b = Ap_int.clamp s b in
      List.for_all (Ap_int.in_range s)
        [ Ap_int.add s a b; Ap_int.sub s a b; Ap_int.mul s a b; Ap_int.neg s a ])

let prop_ap_int_add_monotone =
  QCheck.Test.make ~name:"ap_int saturating add is monotone" ~count:500
    QCheck.(triple (int_range (-200) 200) (int_range (-200) 200) (int_range (-200) 200))
    (fun (a, b, c) ->
      let s = Ap_int.spec 8 in
      let b', c' = (min b c, max b c) in
      Ap_int.add s a b' <= Ap_int.add s a c')

let test_ap_fixed_roundtrip () =
  let s = Ap_fixed.spec ~width:16 ~frac:8 in
  Alcotest.(check (float 1e-9)) "1.5 exact" 1.5
    (Ap_fixed.to_float s (Ap_fixed.of_float s 1.5));
  Alcotest.(check (float 1e-9)) "-2.25 exact" (-2.25)
    (Ap_fixed.to_float s (Ap_fixed.of_float s (-2.25)));
  Alcotest.(check int) "one raw" 256 (Ap_fixed.one s);
  Alcotest.(check (float 1e-12)) "epsilon" (1.0 /. 256.0) (Ap_fixed.epsilon s)

let prop_ap_fixed_quantization_error =
  QCheck.Test.make ~name:"ap_fixed quantization error < epsilon" ~count:500
    QCheck.(float_range (-60.0) 60.0)
    (fun x ->
      let s = Ap_fixed.spec ~width:24 ~frac:10 in
      Ap_fixed.resolution_error s x <= Ap_fixed.epsilon s /. 2.0 +. 1e-12)

let prop_ap_fixed_add_exact =
  QCheck.Test.make ~name:"ap_fixed add is exact on raw values" ~count:500
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (x, y) ->
      let s = Ap_fixed.spec ~width:32 ~frac:12 in
      let rx = Ap_fixed.of_float s x and ry = Ap_fixed.of_float s y in
      Ap_fixed.add s rx ry = rx + ry)

let prop_ap_fixed_mul_close =
  QCheck.Test.make ~name:"ap_fixed mul within 2 eps of real product" ~count:500
    QCheck.(pair (float_range (-8.0) 8.0) (float_range (-8.0) 8.0))
    (fun (x, y) ->
      let s = Ap_fixed.spec ~width:40 ~frac:12 in
      let rx = Ap_fixed.of_float s x and ry = Ap_fixed.of_float s y in
      let got = Ap_fixed.to_float s (Ap_fixed.mul s rx ry) in
      let want = Ap_fixed.to_float s rx *. Ap_fixed.to_float s ry in
      abs_float (got -. want) <= 2.0 *. Ap_fixed.epsilon s)

let prop_abs_diff =
  QCheck.Test.make ~name:"ap_fixed abs_diff symmetric and nonnegative" ~count:500
    QCheck.(pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0))
    (fun (x, y) ->
      let s = Ap_fixed.spec ~width:32 ~frac:8 in
      let rx = Ap_fixed.of_float s x and ry = Ap_fixed.of_float s y in
      let d1 = Ap_fixed.abs_diff s rx ry and d2 = Ap_fixed.abs_diff s ry rx in
      d1 = d2 && d1 >= 0)

let suite =
  [
    Alcotest.test_case "ap_int range" `Quick test_ap_int_range;
    Alcotest.test_case "ap_int invalid specs" `Quick test_ap_int_invalid;
    Alcotest.test_case "ap_int bits_for" `Quick test_bits_for;
    qtest prop_ap_int_always_in_range;
    qtest prop_ap_int_add_monotone;
    Alcotest.test_case "ap_fixed roundtrip" `Quick test_ap_fixed_roundtrip;
    qtest prop_ap_fixed_quantization_error;
    qtest prop_ap_fixed_add_exact;
    qtest prop_ap_fixed_mul_close;
    qtest prop_abs_diff;
  ]
