(* Deeper fuzzing: known-answer vectors, random scoring parameters (not
   just the defaults) driven through both engines and the independent
   baselines, and degenerate input shapes. *)
open Dphls_core
module Score = Dphls_util.Score
module B = Dphls_baselines

let qtest = QCheck_alcotest.to_alcotest

(* SplitMix64 reference vectors (Steele et al.; seed 0 is the canonical
   published sequence). Pins the generator: every workload in the
   repository depends on this stream. *)
let test_splitmix64_vectors () =
  let rng = Dphls_util.Rng.create 0 in
  List.iter
    (fun expect -> Alcotest.(check int64) "seed 0 stream" expect (Dphls_util.Rng.int64 rng))
    [ 0xe220a8397b1dcdafL; 0x6e789e6aa1b965f4L; 0x06c45d188009454fL; 0xf88bb8a8724c81ecL ];
  let rng2 = Dphls_util.Rng.create 12345 in
  List.iter
    (fun expect -> Alcotest.(check int64) "seed 12345 stream" expect (Dphls_util.Rng.int64 rng2))
    [ 0x22118258a9d111a0L; 0x346edce5f713f8edL; 0x1e9a57bc80e6721dL; 0x2d160e7e5c3f42caL ]

let random_pair rng =
  let q = Dphls_alphabet.Dna.random rng (1 + Dphls_util.Rng.int rng 36) in
  let r = Dphls_alphabet.Dna.random rng (1 + Dphls_util.Rng.int rng 36) in
  (q, r)

(* Random linear parameters: engines and the independent baseline must
   agree for ANY (sane) scoring, not just the defaults. *)
let prop_k01_random_params =
  QCheck.Test.make ~name:"#1 random params: engines == baseline" ~count:80
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create seed in
      let match_ = Dphls_util.Rng.int_in rng 1 5 in
      let mismatch = -Dphls_util.Rng.int_in rng 1 5 in
      let gap = -Dphls_util.Rng.int_in rng 1 5 in
      let p = { Dphls_kernels.K01_global_linear.match_; mismatch; gap } in
      let q, r = random_pair rng in
      let w = Workload.of_bases ~query:q ~reference:r in
      let k = Dphls_kernels.K01_global_linear.kernel in
      let gold = Dphls_reference.Ref_engine.run k p w in
      let sys, _ =
        Dphls_systolic.Engine.run
          (Dphls_systolic.Config.create ~n_pe:(1 + Dphls_util.Rng.int rng 12))
          k p w
      in
      let base =
        B.Seqan_like.score
          (B.Seqan_like.dna_scoring ~match_ ~mismatch ~gap:(B.Seqan_like.Linear gap)
             ~mode:B.Seqan_like.Global)
          ~query:q ~reference:r
      in
      Result.equal_alignment gold sys && gold.Result.score = base)

let prop_k02_random_params =
  QCheck.Test.make ~name:"#2 random affine params: engines == baseline" ~count:80
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create (seed + 7) in
      let match_ = Dphls_util.Rng.int_in rng 1 4 in
      let mismatch = -Dphls_util.Rng.int_in rng 1 6 in
      let gap_open = -Dphls_util.Rng.int_in rng 0 8 in
      let gap_extend = -Dphls_util.Rng.int_in rng 1 4 in
      let p = { Dphls_kernels.K02_global_affine.match_; mismatch; gap_open; gap_extend } in
      let q, r = random_pair rng in
      let w = Workload.of_bases ~query:q ~reference:r in
      let k = Dphls_kernels.K02_global_affine.kernel in
      let gold = Dphls_reference.Ref_engine.run k p w in
      let sys, _ =
        Dphls_systolic.Engine.run (Dphls_systolic.Config.create ~n_pe:8) k p w
      in
      let base =
        B.Seqan_like.score
          (B.Seqan_like.dna_scoring ~match_ ~mismatch
             ~gap:(B.Seqan_like.Affine { open_ = gap_open; extend = gap_extend })
             ~mode:B.Seqan_like.Global)
          ~query:q ~reference:r
      in
      Result.equal_alignment gold sys && gold.Result.score = base)

let prop_k05_random_params =
  QCheck.Test.make ~name:"#5 random two-piece params: engines == baseline" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create (seed + 13) in
      let match_ = 2 and mismatch = -Dphls_util.Rng.int_in rng 2 6 in
      let open1 = -Dphls_util.Rng.int_in rng 2 8 in
      let extend1 = -Dphls_util.Rng.int_in rng 2 4 in
      let open2 = -Dphls_util.Rng.int_in rng 10 30 in
      let extend2 = -1 in
      let p =
        {
          Dphls_kernels.K05_global_two_piece.match_;
          mismatch;
          gaps = { Dphls_kernels.Two_piece_rec.open1; extend1; open2; extend2 };
        }
      in
      let q, r = random_pair rng in
      let w = Workload.of_bases ~query:q ~reference:r in
      let k = Dphls_kernels.K05_global_two_piece.kernel in
      let gold = Dphls_reference.Ref_engine.run k p w in
      let sys, _ =
        Dphls_systolic.Engine.run (Dphls_systolic.Config.create ~n_pe:8) k p w
      in
      let base =
        B.Minimap2_like.score
          { B.Minimap2_like.match_; mismatch; open1; extend1; open2; extend2 }
          ~query:q ~reference:r
      in
      Result.equal_alignment gold sys && gold.Result.score = base)

(* Degenerate shapes: single characters and extreme aspect ratios. *)
let test_degenerate_shapes () =
  List.iter
    (fun id ->
      let e = Dphls_kernels.Catalog.find id in
      let (Registry.Packed (k, p)) = e.packed in
      List.iter
        (fun (qlen, rlen) ->
          let rng = Dphls_util.Rng.create (id + qlen + rlen) in
          let w =
            Workload.of_bases
              ~query:(Dphls_alphabet.Dna.random rng qlen)
              ~reference:(Dphls_alphabet.Dna.random rng rlen)
          in
          let gold = Dphls_reference.Ref_engine.run k p w in
          let sys, _ =
            Dphls_systolic.Engine.run (Dphls_systolic.Config.create ~n_pe:4) k p w
          in
          Alcotest.(check bool)
            (Printf.sprintf "#%d %dx%d" id qlen rlen)
            true
            (Result.equal_alignment gold sys))
        [ (1, 1); (1, 30); (30, 1); (2, 29); (64, 3) ])
    [ 1; 2; 3; 4; 5; 6; 7 ]

(* All-identical and fully-disjoint sequences have closed-form optima. *)
let test_closed_form_extremes () =
  let k = Dphls_kernels.K01_global_linear.kernel in
  let p = Dphls_kernels.K01_global_linear.default in
  let same = Array.make 20 0 in
  let w = Workload.of_bases ~query:same ~reference:same in
  Alcotest.(check int) "identical: n*match" (20 * 2)
    (Dphls_reference.Ref_engine.run k p w).Result.score;
  let a = Array.make 15 0 and c = Array.make 15 1 in
  let w2 = Workload.of_bases ~query:a ~reference:c in
  (* mismatch (-2) == 2 gaps; mismatching straight through is optimal *)
  Alcotest.(check int) "disjoint: n*mismatch" (15 * -2)
    (Dphls_reference.Ref_engine.run k p w2).Result.score

(* Affine FSM transition table, exhaustively over all 16 pointers. *)
let test_affine_fsm_table () =
  let fsm = Dphls_kernels.Kdefs.Affine.fsm in
  (* state H: source bits decide *)
  for ext_bits = 0 to 3 do
    let base = ext_bits lsl 2 in
    Alcotest.(check bool) "H + diag" true
      (fsm.Traceback.transition 0 ~ptr:(base lor 0) = (0, Traceback.Diag));
    Alcotest.(check bool) "H + del -> Stay into D" true
      (fsm.Traceback.transition 0 ~ptr:(base lor 1) = (1, Traceback.Stay));
    Alcotest.(check bool) "H + ins -> Stay into I" true
      (fsm.Traceback.transition 0 ~ptr:(base lor 2) = (2, Traceback.Stay));
    Alcotest.(check bool) "H + end -> Stop" true
      (snd (fsm.Traceback.transition 0 ~ptr:(base lor 3)) = Traceback.Stop)
  done;
  (* state D: extension bit decides; always moves Up *)
  for ptr = 0 to 15 do
    let st, mv = fsm.Traceback.transition 1 ~ptr in
    Alcotest.(check bool) "D moves up" true (mv = Traceback.Up);
    Alcotest.(check int) "D next state" (if ptr land 4 <> 0 then 1 else 0) st;
    let st_i, mv_i = fsm.Traceback.transition 2 ~ptr in
    Alcotest.(check bool) "I moves left" true (mv_i = Traceback.Left);
    Alcotest.(check int) "I next state" (if ptr land 8 <> 0 then 2 else 0) st_i
  done

(* Two-piece FSM: all five states behave per the encoding. *)
let test_two_piece_fsm_table () =
  let fsm = Dphls_kernels.Kdefs.Two_piece.fsm in
  List.iter
    (fun (src, expect_state, expect_move) ->
      let st, mv = fsm.Traceback.transition 0 ~ptr:src in
      Alcotest.(check int) "H source state" expect_state st;
      Alcotest.(check bool) "H source move" true (mv = expect_move))
    [
      (0, 0, Traceback.Diag); (1, 1, Traceback.Stay); (2, 2, Traceback.Stay);
      (3, 3, Traceback.Stay); (4, 4, Traceback.Stay);
    ];
  List.iter
    (fun (state, ext_bit, move) ->
      let extending = fsm.Traceback.transition state ~ptr:(1 lsl ext_bit) in
      let opening = fsm.Traceback.transition state ~ptr:0 in
      Alcotest.(check bool) "extension keeps state" true (extending = (state, move));
      Alcotest.(check bool) "open returns to H" true (opening = (0, move)))
    [
      (1, 3, Traceback.Up); (2, 4, Traceback.Left); (3, 5, Traceback.Up);
      (4, 6, Traceback.Left);
    ]

(* Random-parameter differential fuzzing routed through the batch API:
   the parallel path must inherit every oracle the single-call path
   already satisfies — batched results equal per-pair single calls on a
   random engine/kind/worker-count, and for the global kind the score
   also equals the independent SeqAn-like baseline at the kernel #1
   default parameters. *)
let prop_batch_differential =
  QCheck.Test.make ~name:"batch API: parallel path == single-call oracle"
    ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create (seed + 31) in
      let n = 1 + Dphls_util.Rng.int rng 12 in
      let raw = Array.init n (fun _ -> random_pair rng) in
      let pairs =
        Array.map
          (fun (q, r) ->
            (Dphls_alphabet.Dna.to_string q, Dphls_alphabet.Dna.to_string r))
          raw
      in
      let workers = 1 + Dphls_util.Rng.int rng 5 in
      let kind =
        Dphls_util.Rng.choice rng
          [|
            Dphls.Batch.Global; Dphls.Batch.Global_affine; Dphls.Batch.Local;
            Dphls.Batch.Semi_global;
          |]
      in
      let engine =
        if Dphls_util.Rng.bool rng then Dphls.Align.Golden
        else Dphls.Align.Systolic (1 + Dphls_util.Rng.int rng 12)
      in
      let batched = Dphls.Batch.align_all ~engine ~kind ~workers pairs in
      let solo_ok =
        Array.for_all
          (fun i ->
            let query, reference = pairs.(i) in
            batched.(i) = Dphls.Batch.align_one ~engine kind ~query ~reference)
          (Array.init n (fun i -> i))
      in
      let baseline_ok =
        kind <> Dphls.Batch.Global
        || Array.for_all
             (fun i ->
               let q, r = raw.(i) in
               let d = Dphls_kernels.K01_global_linear.default in
               batched.(i).Dphls.Align.score
               = B.Seqan_like.score
                   (B.Seqan_like.dna_scoring
                      ~match_:d.Dphls_kernels.K01_global_linear.match_
                      ~mismatch:d.Dphls_kernels.K01_global_linear.mismatch
                      ~gap:(B.Seqan_like.Linear d.Dphls_kernels.K01_global_linear.gap)
                      ~mode:B.Seqan_like.Global)
                   ~query:q ~reference:r)
             (Array.init n (fun i -> i))
      in
      solo_ok && baseline_ok)

(* Adaptive banding (kernels #16-#18): the band window is decided per
   wavefront from run-time scores, so the differential oracle is the
   strongest check we have — the golden engine replaying the systolic
   engine's N_PE-row chunking must prune the IDENTICAL cell set and
   produce the identical alignment. *)
let prop_adaptive_differential id =
  QCheck.Test.make
    ~name:(Printf.sprintf "adaptive kernel #%d systolic == golden (chunk-exact)" id)
    ~count:60
    QCheck.(pair (int_range 8 72) (int_range 1 16))
    (fun (len, n_pe) ->
      let e = Dphls_kernels.Catalog.find id in
      let (Registry.Packed (k, p)) = e.packed in
      let rng = Dphls_util.Rng.create ((id * 4099) + (len * 17) + n_pe) in
      let w = e.Dphls_kernels.Catalog.gen rng ~len in
      let gold = Dphls_reference.Ref_engine.run ~band_pe:n_pe k p w in
      let sys, _ =
        Dphls_systolic.Engine.run (Dphls_systolic.Config.create ~n_pe) k p w
      in
      Result.equal_alignment gold sys)

(* Fixed vs adaptive score loss on a drifting long-read workload, with
   X-Drop as the accuracy yardstick (same role as in the ablation).
   Margins are calibrated against the default-threshold behavior: the
   adaptive band recovers >= 85% of the unbanded optimum while computing
   strictly fewer cells than the fixed band of the same width. *)
let test_adaptive_score_loss () =
  let module K11 = Dphls_kernels.K11_banded_global_linear in
  let len = 256 and n_pe = 32 and bandwidth = 32 in
  let rng = Dphls_util.Rng.create 2026 in
  let w = K11.gen_drift rng ~len in
  let p = K11.default in
  let cfg = Dphls_systolic.Config.create ~n_pe in
  let unbanded, _ =
    Dphls_systolic.Engine.run cfg { K11.kernel with Kernel.banding = None } p w
  in
  let fixed, f_stats = Dphls_systolic.Engine.run cfg (K11.kernel_with ~bandwidth) p w in
  let adaptive, a_stats =
    Dphls_systolic.Engine.run cfg
      (K11.adaptive_with ~bandwidth ~threshold:Banding.default_threshold)
      p w
  in
  let query = Types.bases_of_seq w.Workload.query
  and reference = Types.bases_of_seq w.Workload.reference in
  let xdrop =
    B.Xdrop.align ~match_:p.K11.match_ ~mismatch:p.mismatch ~gap_open:0
      ~gap_extend:p.gap ~x:Banding.default_threshold ~query ~reference
  in
  let frac a b = float_of_int a /. float_of_int (max 1 (abs b)) in
  Alcotest.(check bool) "fixed recovers the optimum here" true
    (fixed.Result.score = unbanded.Result.score);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive >= 85%% of unbanded (%d vs %d)"
       adaptive.Result.score unbanded.Result.score)
    true
    (frac adaptive.Result.score unbanded.Result.score >= 0.85);
  Alcotest.(check bool) "adaptive within x-drop's reach" true
    (frac adaptive.Result.score xdrop.B.Xdrop.score >= 0.85);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive computes fewer cells (%d vs %d)"
       a_stats.Dphls_systolic.Engine.pe_fires f_stats.Dphls_systolic.Engine.pe_fires)
    true
    (a_stats.Dphls_systolic.Engine.pe_fires < f_stats.Dphls_systolic.Engine.pe_fires)

(* Scheduler lower bounds as properties. *)
let prop_scheduler_bounds =
  QCheck.Test.make ~name:"scheduler makespan respects lower bounds" ~count:100
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 1 20)
           (triple (int_range 0 20) (int_range 1 200) (int_range 0 20))))
    (fun (n_b, jobs) ->
      let jobs =
        List.map
          (fun (i, c, o) ->
            { Dphls_host.Scheduler.transfer_in = i; compute = c; transfer_out = o })
          jobs
      in
      let r = Dphls_host.Scheduler.run_channel ~n_b jobs in
      let total_compute =
        List.fold_left (fun a j -> a + j.Dphls_host.Scheduler.compute) 0 jobs
      in
      let total_transfer =
        List.fold_left
          (fun a j ->
            a + j.Dphls_host.Scheduler.transfer_in + j.Dphls_host.Scheduler.transfer_out)
          0 jobs
      in
      (* arbiter serialization and per-block compute are both hard floors *)
      r.Dphls_host.Scheduler.makespan >= total_transfer
      && r.Dphls_host.Scheduler.makespan >= (total_compute + n_b - 1) / n_b
      && r.Dphls_host.Scheduler.arbiter_busy = total_transfer
      && r.Dphls_host.Scheduler.block_busy = total_compute)

let suite =
  [
    Alcotest.test_case "splitmix64 reference vectors" `Quick test_splitmix64_vectors;
    qtest prop_k01_random_params;
    qtest prop_k02_random_params;
    qtest prop_k05_random_params;
    Alcotest.test_case "degenerate shapes" `Quick test_degenerate_shapes;
    Alcotest.test_case "closed-form extremes" `Quick test_closed_form_extremes;
    Alcotest.test_case "affine FSM table" `Quick test_affine_fsm_table;
    Alcotest.test_case "two-piece FSM table" `Quick test_two_piece_fsm_table;
    qtest prop_scheduler_bounds;
    qtest prop_batch_differential;
    qtest (prop_adaptive_differential 16);
    qtest (prop_adaptive_differential 17);
    qtest (prop_adaptive_differential 18);
    Alcotest.test_case "adaptive vs fixed score loss" `Quick test_adaptive_score_loss;
  ]
