(* Golden-vector harness tests: on-disk codec, capture equivalence
   between engines, stream replay, drift detection (the CI gate) and the
   `dphls vectors` CLI negative paths. *)
open Dphls_core
module Stream = Dphls_vectors.Stream
module Codec = Dphls_vectors.Codec
module Capture = Dphls_vectors.Capture
module Replay = Dphls_vectors.Replay
module Harness = Dphls_vectors.Harness

let spec ?band ?(n_pe = 4) ?(len = 24) ?(seed = 5) kernel_id =
  { Harness.kernel_id; n_pe; len; band; seed }

let generate_exn s =
  match Harness.generate s with
  | Ok (v, _) -> v
  | Error msg -> Alcotest.fail msg

let resolve_kernel kernel_id band =
  let e = Dphls_kernels.Catalog.find kernel_id in
  let (Registry.Packed (k, p)) = e.packed in
  match band with
  | None -> Registry.Packed (k, p)
  | Some b ->
    Registry.Packed ({ k with Kernel.banding = Stream.banding_of_spec b }, p)

let cell_count (v : Stream.t) =
  Array.fold_left
    (fun n -> function Stream.Cell _ -> n + 1 | Stream.Window _ -> n)
    0 v.Stream.records

let window_count v = Array.length v.Stream.records - cell_count v

(* ---- codec ---- *)

let test_codec_roundtrip () =
  List.iter
    (fun s ->
      let v = generate_exn s in
      let text = Codec.to_string v in
      match Codec.of_string text with
      | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
      | Ok v2 ->
        (match Stream.diff ~expected:v ~actual:v2 with
        | None -> ()
        | Some d ->
          Alcotest.failf "round-trip diverges: %s" (Stream.describe d));
        Alcotest.(check string)
          "re-serialization is byte-identical" text (Codec.to_string v2))
    [ spec 1; spec 10; spec ~band:(Stream.Fixed 6) 11; spec 16 ]

let test_codec_file_roundtrip () =
  let v = generate_exn (spec 2 ~n_pe:8) in
  let path = Filename.temp_file "dphls_vec" ".dpv" in
  Codec.write_file path v;
  let back = Codec.read_file path in
  Sys.remove path;
  match back with
  | Error msg -> Alcotest.fail msg
  | Ok v2 ->
    Alcotest.(check bool)
      "file round-trip equal" true
      (Stream.diff ~expected:v ~actual:v2 = None)

let lines_of v = String.split_on_char '\n' (Codec.to_string v)

let expect_parse_error ~substring text =
  match Codec.of_string text with
  | Ok _ -> Alcotest.failf "malformed input accepted (wanted %S)" substring
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" msg substring)
      true (contains msg substring)

let test_codec_rejects_version_skew () =
  let v = generate_exn (spec 1) in
  let text =
    match lines_of v with
    | _magic :: rest -> String.concat "\n" (("DPHLSVEC " ^ "99") :: rest)
    | [] -> assert false
  in
  expect_parse_error ~substring:"version" text

let test_codec_rejects_truncation () =
  let v = generate_exn (spec 1) in
  let ls = lines_of v in
  let keep = List.filteri (fun i _ -> i < 40) ls in
  expect_parse_error ~substring:"truncated" (String.concat "\n" keep ^ "\n")

let test_codec_rejects_corruption () =
  (* Flip one recorded score without fixing the checksum. *)
  let v = generate_exn (spec 1) in
  let flipped = ref false in
  let ls =
    List.map
      (fun l ->
        if (not !flipped) && String.length l > 2 && l.[0] = 'C' then begin
          flipped := true;
          l ^ "9"
        end
        else l)
      (lines_of v)
  in
  Alcotest.(check bool) "a record was altered" true !flipped;
  expect_parse_error ~substring:"checksum" (String.concat "\n" ls)

let test_codec_rejects_malformed_record () =
  let v = generate_exn (spec 1) in
  let broken = ref false in
  let ls =
    List.map
      (fun l ->
        if (not !broken) && String.length l > 2 && l.[0] = 'C' then begin
          broken := true;
          "C 0 3"
        end
        else l)
      (lines_of v)
  in
  expect_parse_error ~substring:"malformed cell record" (String.concat "\n" ls)

let test_codec_rejects_layer_count_skew () =
  (* Drop the score from one cell record: the diagnostic names the
     record's chunk and wavefront. *)
  let v = generate_exn (spec 1) in
  let target = ref "" in
  let ls =
    List.map
      (fun l ->
        if !target = "" && String.length l > 2 && l.[0] = 'C' then begin
          match String.rindex_opt l ' ' with
          | Some i ->
            target := l;
            String.sub l 0 i
          | None -> l
        end
        else l)
      (lines_of v)
  in
  expect_parse_error ~substring:"wavefront" (String.concat "\n" ls);
  expect_parse_error ~substring:"layer scores" (String.concat "\n" ls)

(* ---- capture: systolic vs golden reference ---- *)

let test_capture_matches_reference () =
  List.iter
    (fun s ->
      let (Registry.Packed (k, p)) = resolve_kernel s.Harness.kernel_id s.Harness.band in
      let e = Dphls_kernels.Catalog.find s.Harness.kernel_id in
      let w =
        e.Dphls_kernels.Catalog.gen
          (Dphls_util.Rng.create s.Harness.seed)
          ~len:s.Harness.len
      in
      let sys, _ = Capture.systolic k p ~n_pe:s.Harness.n_pe w in
      let gold, _ = Capture.reference k p ~n_pe:s.Harness.n_pe w in
      match Stream.diff ~expected:gold ~actual:sys with
      | None -> ()
      | Some d ->
        Alcotest.failf "kernel %d: engines diverge: %s" s.Harness.kernel_id
          (Stream.describe d))
    [
      spec 1;
      spec 2 ~n_pe:8;
      spec 9;
      spec 10;
      spec ~band:(Stream.Fixed 6) 11;
      spec 16 ~len:32;
    ]

let test_adaptive_capture_has_windows () =
  let v = generate_exn (spec 16 ~len:32) in
  Alcotest.(check bool) "adaptive capture records windows" true
    (window_count v > 0);
  Array.iter
    (function
      | Stream.Window { v_lo; v_hi; _ } ->
        Alcotest.(check bool) "window well-formed" true (v_lo <= v_hi)
      | Stream.Cell _ -> ())
    v.Stream.records;
  let unbanded = generate_exn (spec 1) in
  Alcotest.(check int) "unbanded capture has no windows" 0
    (window_count unbanded)

(* ---- replay ---- *)

let test_replay_both_datapaths () =
  List.iter
    (fun s ->
      let v = generate_exn s in
      let (Registry.Packed (k, p)) = resolve_kernel s.Harness.kernel_id s.Harness.band in
      List.iter
        (fun datapath ->
          match Replay.run ~datapath k p v with
          | Ok n -> Alcotest.(check int) "all cells replayed" (cell_count v) n
          | Error d -> Alcotest.failf "replay diverged: %s" (Stream.describe d))
        [ `Compiled; `Boxed ])
    [ spec 1; spec 2 ~n_pe:8; spec 9; spec 16 ~len:32 ]

let perturb_cell (v : Stream.t) ~index ~f =
  let n = ref (-1) in
  let records =
    Array.map
      (function
        | Stream.Cell c ->
          incr n;
          if !n = index then Stream.Cell (f c) else Stream.Cell c
        | r -> r)
      v.Stream.records
  in
  { v with Stream.records }

let test_replay_catches_perturbed_score () =
  let v = generate_exn (spec 1) in
  let target = cell_count v / 2 in
  let perturbed_site = ref None in
  let v' =
    perturb_cell v ~index:target ~f:(fun c ->
        perturbed_site := Some (Stream.site_of_cell c);
        { c with Stream.c_scores = Array.map (fun s -> s + 1) c.Stream.c_scores })
  in
  let (Registry.Packed (k, p)) = resolve_kernel 1 None in
  match Replay.run k p v' with
  | Ok _ -> Alcotest.fail "perturbed vector replayed clean"
  | Error (Stream.Score_diff { site; _ }) ->
    (* neighbours come from the recorded streams, so the first divergence
       is exactly the perturbed cell, not a downstream casualty *)
    Alcotest.(check bool) "divergence at the perturbed cell" true
      (Some site = !perturbed_site)
  | Error d -> Alcotest.failf "unexpected divergence kind: %s" (Stream.describe d)

let test_replay_catches_perturbed_pointer () =
  let v = generate_exn (spec 2 ~n_pe:8) in
  let v' =
    perturb_cell v ~index:(cell_count v / 3) ~f:(fun c ->
        { c with Stream.c_tb = c.Stream.c_tb lxor 1 })
  in
  let (Registry.Packed (k, p)) = resolve_kernel 2 None in
  match Replay.run k p v' with
  | Error (Stream.Pointer_diff _) -> ()
  | Ok _ -> Alcotest.fail "perturbed pointer replayed clean"
  | Error d -> Alcotest.failf "unexpected divergence kind: %s" (Stream.describe d)

(* ---- diff ---- *)

let test_diff_names_window_divergence () =
  let v = generate_exn (spec 16 ~len:32) in
  let done_ = ref false in
  let records =
    Array.map
      (function
        | Stream.Window { v_chunk; v_wavefront; v_lo; v_hi } when not !done_ ->
          done_ := true;
          Stream.Window { v_chunk; v_wavefront; v_lo = v_lo - 1; v_hi }
        | r -> r)
      v.Stream.records
  in
  let v' = { v with Stream.records } in
  match Stream.diff ~expected:v ~actual:v' with
  | Some (Stream.Window_diff { at_wavefront; _ } as d) ->
    Alcotest.(check bool) "wavefront named" true (at_wavefront >= 0);
    let msg = Stream.describe d in
    Alcotest.(check bool) "description names the wavefront" true
      (String.length msg > 0)
  | Some d -> Alcotest.failf "unexpected divergence: %s" (Stream.describe d)
  | None -> Alcotest.fail "window perturbation not detected"

let test_diff_names_missing_cell () =
  let v = generate_exn (spec 1) in
  let dropped = ref None in
  let keep = ref true in
  let records =
    Array.of_list
      (List.filteri
         (fun i r ->
           match r with
           | Stream.Cell c when !keep && i = Array.length v.Stream.records / 2
             ->
             keep := false;
             dropped := Some (Stream.site_of_cell c);
             false
           | _ -> true)
         (Array.to_list v.Stream.records))
  in
  let v' = { v with Stream.records } in
  match Stream.diff ~expected:v ~actual:v' with
  | Some (Stream.Missing_cell site) ->
    Alcotest.(check bool) "missing cell site named" true (Some site = !dropped)
  | Some d -> Alcotest.failf "unexpected divergence: %s" (Stream.describe d)
  | None -> Alcotest.fail "dropped cell not detected"

let test_describe_names_schedule_slot () =
  let d =
    Stream.Score_diff
      {
        site =
          { Stream.at_chunk = 2; at_wavefront = 7; at_pe = 3; at_row = 11; at_col = 4 };
        layer = 0;
        expected = 5;
        actual = 6;
      }
  in
  let msg = Stream.describe d in
  List.iter
    (fun needle ->
      let nh = String.length msg and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub msg i nn = needle || go (i + 1)) in
      Alcotest.(check bool)
        (Printf.sprintf "describe mentions %S" needle)
        true (go 0))
    [ "chunk 2"; "wavefront 7"; "PE 3"; "(11,4)" ]

(* ---- harness ---- *)

let test_harness_check_ok () =
  let v = generate_exn (spec 3) in
  match Harness.check v with
  | Ok o ->
    Alcotest.(check int) "cells counted" (cell_count v) o.Harness.o_cells;
    Alcotest.(check int) "all replayed" (cell_count v) o.Harness.o_replayed
  | Error msg -> Alcotest.fail msg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_harness_catches_forged_n_pe () =
  let v = generate_exn (spec 1) in
  let forged =
    { v with Stream.header = { v.Stream.header with Stream.n_pe = 8 } }
  in
  match Harness.check forged with
  | Ok _ -> Alcotest.fail "forged n_pe accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names the params hash" msg)
      true (contains msg "params")

let test_harness_catches_perturbed_window () =
  (* The acceptance-criterion scenario: an off-by-one band window in a
     committed vector is caught with its wavefront named. *)
  let v = generate_exn (spec 16 ~len:32) in
  let done_ = ref false in
  let records =
    Array.map
      (function
        | Stream.Window { v_chunk; v_wavefront; v_lo; v_hi } when not !done_ ->
          done_ := true;
          Stream.Window { v_chunk; v_wavefront; v_lo; v_hi = v_hi + 1 }
        | r -> r)
      v.Stream.records
  in
  let v' = { v with Stream.records } in
  (* round-trip through the codec so the file itself is well-formed *)
  let path = Filename.temp_file "dphls_vec" ".dpv" in
  let oc = open_out path in
  output_string oc (Codec.to_string v');
  close_out oc;
  let r = Harness.check_file path in
  Sys.remove path;
  match r with
  | Ok _ -> Alcotest.fail "perturbed band window accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names the wavefront" msg)
      true
      (contains msg "wavefront" && contains msg "band-window")

let test_harness_catches_perturbed_cell_score () =
  let v = generate_exn (spec 1) in
  let v' =
    perturb_cell v ~index:(cell_count v / 2) ~f:(fun c ->
        { c with Stream.c_scores = Array.map (fun s -> s - 3) c.Stream.c_scores })
  in
  match Harness.check v' with
  | Ok _ -> Alcotest.fail "perturbed score accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names chunk/wavefront/PE" msg)
      true
      (contains msg "chunk" && contains msg "wavefront" && contains msg "PE")

let test_committed_corpus_checks () =
  let dir = "data/vectors" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dpv")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (List.length files >= 7);
  List.iter
    (fun f ->
      match Harness.check_file (Filename.concat dir f) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" f msg)
    files

let test_corpus_regeneration_is_deterministic () =
  List.iter
    (fun s ->
      let a = generate_exn s and b = generate_exn s in
      Alcotest.(check string)
        (Harness.filename s ^ " regenerates byte-identically")
        (Codec.to_string a) (Codec.to_string b))
    Harness.corpus

(* ---- CLI negative paths ---- *)

let dphls_exe = "../bin/dphls.exe"

let run_cli args =
  let out = Filename.temp_file "dphls_cli" ".txt" in
  let code =
    Sys.command (Filename.quote_command dphls_exe ~stdout:out ~stderr:out args)
  in
  let ic = open_in out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let write_text path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let test_cli_check_good_corpus () =
  let code, out = run_cli [ "vectors"; "check"; "data/vectors/k01_global_linear_npe4_len32.dpv" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports ok" true (contains out "ok")

let test_cli_check_corrupted () =
  let src = "data/vectors/k01_global_linear_npe4_len32.dpv" in
  let ic = open_in src in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let bad = Filename.temp_file "dphls_bad" ".dpv" in
  (* corrupt one byte inside the body *)
  let b = Bytes.of_string text in
  let i = String.index_from text (String.length text / 2) 'C' in
  Bytes.set b (i + 2) '9';
  write_text bad (Bytes.to_string b);
  let code, out = run_cli [ "vectors"; "check"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 2 on corruption" 2 code;
  Alcotest.(check bool) "diagnostic mentions checksum or record" true
    (contains out "checksum" || contains out "record")

let test_cli_check_truncated () =
  let src = "data/vectors/k09_dtw_npe4_len24.dpv" in
  let ic = open_in src in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let cut =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 30) (String.split_on_char '\n' text))
    ^ "\n"
  in
  let bad = Filename.temp_file "dphls_trunc" ".dpv" in
  write_text bad cut;
  let code, out = run_cli [ "vectors"; "check"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 2 on truncation" 2 code;
  Alcotest.(check bool) "diagnostic mentions truncation" true
    (contains out "truncated")

let test_cli_check_version_skew () =
  let src = "data/vectors/k01_global_linear_npe4_len32.dpv" in
  let ic = open_in src in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let skewed =
    match String.split_on_char '\n' text with
    | _ :: rest -> String.concat "\n" ("DPHLSVEC 42" :: rest)
    | [] -> assert false
  in
  let bad = Filename.temp_file "dphls_skew" ".dpv" in
  write_text bad skewed;
  let code, out = run_cli [ "vectors"; "check"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 2 on version skew" 2 code;
  Alcotest.(check bool) "diagnostic names the version field" true
    (contains out "version");
  Alcotest.(check bool) "diagnostic says 42" true (contains out "42")

let test_cli_check_drift () =
  (* A well-formed vector whose streams diverge from this build: exit 1
     with the first divergence named. *)
  let v = generate_exn (spec 1 ~len:16 ~seed:77) in
  let v' =
    perturb_cell v ~index:(cell_count v / 2) ~f:(fun c ->
        { c with Stream.c_scores = Array.map (fun s -> s + 2) c.Stream.c_scores })
  in
  let bad = Filename.temp_file "dphls_drift" ".dpv" in
  write_text bad (Codec.to_string v');
  let code, out = run_cli [ "vectors"; "check"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 1 on drift" 1 code;
  Alcotest.(check bool) "diagnostic names wavefront and PE" true
    (contains out "wavefront" && contains out "PE")

let test_cli_diff () =
  let a = generate_exn (spec 1 ~len:16 ~seed:1) in
  let b = generate_exn (spec 1 ~len:16 ~seed:2) in
  let fa = Filename.temp_file "dphls_a" ".dpv" in
  let fb = Filename.temp_file "dphls_b" ".dpv" in
  write_text fa (Codec.to_string a);
  write_text fb (Codec.to_string b);
  let same_code, same_out = run_cli [ "vectors"; "diff"; fa; fa ] in
  let diff_code, diff_out = run_cli [ "vectors"; "diff"; fa; fb ] in
  Sys.remove fa;
  Sys.remove fb;
  Alcotest.(check int) "identical vectors agree" 0 same_code;
  Alcotest.(check bool) "agreement reported" true (contains same_out "agree");
  Alcotest.(check int) "different vectors exit 1" 1 diff_code;
  Alcotest.(check bool) "divergence described" true
    (contains diff_out "divergence")

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec file roundtrip" `Quick test_codec_file_roundtrip;
    Alcotest.test_case "codec rejects version skew" `Quick
      test_codec_rejects_version_skew;
    Alcotest.test_case "codec rejects truncation" `Quick
      test_codec_rejects_truncation;
    Alcotest.test_case "codec rejects corruption" `Quick
      test_codec_rejects_corruption;
    Alcotest.test_case "codec rejects malformed record" `Quick
      test_codec_rejects_malformed_record;
    Alcotest.test_case "codec names wavefront on layer skew" `Quick
      test_codec_rejects_layer_count_skew;
    Alcotest.test_case "capture matches reference" `Slow
      test_capture_matches_reference;
    Alcotest.test_case "adaptive capture has windows" `Quick
      test_adaptive_capture_has_windows;
    Alcotest.test_case "replay both datapaths" `Quick test_replay_both_datapaths;
    Alcotest.test_case "replay catches perturbed score" `Quick
      test_replay_catches_perturbed_score;
    Alcotest.test_case "replay catches perturbed pointer" `Quick
      test_replay_catches_perturbed_pointer;
    Alcotest.test_case "diff names window divergence" `Quick
      test_diff_names_window_divergence;
    Alcotest.test_case "diff names missing cell" `Quick
      test_diff_names_missing_cell;
    Alcotest.test_case "describe names schedule slot" `Quick
      test_describe_names_schedule_slot;
    Alcotest.test_case "harness check ok" `Quick test_harness_check_ok;
    Alcotest.test_case "harness catches forged n_pe" `Quick
      test_harness_catches_forged_n_pe;
    Alcotest.test_case "harness catches perturbed window" `Quick
      test_harness_catches_perturbed_window;
    Alcotest.test_case "harness catches perturbed score" `Quick
      test_harness_catches_perturbed_cell_score;
    Alcotest.test_case "committed corpus checks" `Slow
      test_committed_corpus_checks;
    Alcotest.test_case "corpus regeneration deterministic" `Slow
      test_corpus_regeneration_is_deterministic;
    Alcotest.test_case "cli: good corpus passes" `Quick
      test_cli_check_good_corpus;
    Alcotest.test_case "cli: corrupted file exits 2" `Quick
      test_cli_check_corrupted;
    Alcotest.test_case "cli: truncated file exits 2" `Quick
      test_cli_check_truncated;
    Alcotest.test_case "cli: version skew exits 2" `Quick
      test_cli_check_version_skew;
    Alcotest.test_case "cli: drift exits 1 naming site" `Quick
      test_cli_check_drift;
    Alcotest.test_case "cli: diff" `Quick test_cli_diff;
  ]
