(* Tests for the pre-synthesis kernel checker (Dphls_analysis): the
   catalog must check clean, and each analysis must flag a seeded-broken
   spec — an undersized score width, a Stay-cycle FSM, an out-of-range
   successor, a pointer wider than tb_bits, a useless adaptive band
   threshold. *)
open Dphls_core
module Score = Dphls_util.Score
module Interval = Dphls_analysis.Interval
module Widths = Dphls_analysis.Widths
module Fsm_check = Dphls_analysis.Fsm_check
module Report = Dphls_analysis.Report
module Check = Dphls_analysis.Check
module K01 = Dphls_kernels.K01_global_linear

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has_finding r ~check ~severity =
  List.exists
    (fun (f : Report.finding) -> f.Report.check = check && f.Report.severity = severity)
    r.Report.findings

(* A few DNA character pairs (match and mismatch) for direct analyzer
   calls on kernels whose workloads we don't generate. *)
let dna_chars =
  [| ([| 0 |], [| 0 |]); ([| 1 |], [| 1 |]); ([| 0 |], [| 2 |]); ([| 3 |], [| 1 |]) |]

let check_kernel ?n_pe ?(max_len = 128) k p =
  Check.run ?n_pe ~max_len ~chars:dna_chars (Registry.Packed (k, p))

(* ---- interval domain ---- *)

let test_interval () =
  let open Interval in
  Alcotest.(check bool) "empty is empty" true (is_empty empty);
  let s = of_score Score.neg_inf in
  Alcotest.(check bool) "-inf flag" true s.neg_inf;
  Alcotest.(check bool) "-inf not finite" false s.finite;
  let iv = observe (observe empty 5) (-3) in
  Alcotest.(check int) "lo" (-3) iv.lo;
  Alcotest.(check int) "hi" 5 iv.hi;
  Alcotest.(check bool) "join flags" true (join iv s).neg_inf;
  Alcotest.(check bool) "8-bit fits" true
    (fits { lo = -128; hi = 127; finite = true; neg_inf = false; pos_inf = false }
       ~bits:8);
  Alcotest.(check bool) "8-bit lo overflow" false
    (fits { lo = -129; hi = 0; finite = true; neg_inf = false; pos_inf = false }
       ~bits:8);
  Alcotest.(check bool) "sentinels exempt" true (fits s ~bits:8);
  Alcotest.(check (option int)) "low repr prefers sentinel" (Some Score.neg_inf)
    (low_value (join iv s));
  Alcotest.(check (option int)) "finite low" (Some (-3)) (finite_low (join iv s))

(* ---- catalog is clean ---- *)

let test_catalog_clean () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let rng = Dphls_util.Rng.create 11 in
      let sample = e.gen rng ~len:64 in
      let chars = Check.chars_of_workload sample in
      Alcotest.(check bool)
        (Printf.sprintf "kernel #%d has char samples" (Registry.id e.packed))
        true
        (Array.length chars > 0);
      List.iter
        (fun max_len ->
          let r = Check.run ~n_pe:e.optimal.n_pe ~max_len ~chars e.packed in
          if not (Report.clean r) then
            Alcotest.failf "kernel #%d %s not clean at max_len %d:@\n%s"
              (Registry.id e.packed) (Registry.name e.packed) max_len
              (Format.asprintf "%a" Report.pp r))
        [ e.default_len; e.max_len ])
    Dphls_kernels.Catalog.all

let test_catalog_max_len_bounds () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "kernel #%d default_len <= max_len" (Registry.id e.packed))
        true
        (e.default_len <= e.max_len))
    Dphls_kernels.Catalog.all

(* ---- width analysis flags undersized score_bits ---- *)

let test_undersized_score_bits () =
  let k = { K01.kernel with Kernel.score_bits = 8 } in
  let w = Widths.analyze k K01.default ~max_len:128 ~chars:dna_chars in
  (match w.Widths.verdict with
  | Widths.Overflow { layer; max_safe_len; _ } ->
    Alcotest.(check int) "primary layer overflows" 0 layer;
    Alcotest.(check bool)
      (Printf.sprintf "max_safe_len %d sane" max_safe_len)
      true
      (max_safe_len >= 8 && max_safe_len < 128)
  | Widths.Safe _ -> Alcotest.fail "8-bit scores must overflow at +-2/cell");
  let r = check_kernel k K01.default in
  Alcotest.(check bool) "report carries width-overflow error" true
    (has_finding r ~check:"width-overflow" ~severity:Report.Error);
  (* and the real 16-bit spec is safe at the same bound *)
  let ok = Widths.analyze K01.kernel K01.default ~max_len:128 ~chars:dna_chars in
  match ok.Widths.verdict with
  | Widths.Safe _ -> ()
  | Widths.Overflow _ -> Alcotest.fail "16-bit global-linear must be safe at 128"

(* ---- FSM model checking ---- *)

let with_traceback k spec = { k with Kernel.traceback = (fun _ -> Some spec) }

let stay_cycle_spec =
  {
    Traceback.fsm =
      {
        Traceback.n_states = 2;
        start_state = 0;
        transition =
          (fun s ~ptr -> if ptr = 0 then (1 - s, Traceback.Stay) else (0, Traceback.Diag));
      };
    stop = Traceback.At_origin;
  }

let test_fsm_stay_cycle () =
  let issues = Fsm_check.check stay_cycle_spec ~tb_bits:2 in
  Alcotest.(check bool) "cycle found" true
    (List.exists (function Fsm_check.Stay_cycle { ptr = 0; _ } -> true | _ -> false) issues);
  let r = check_kernel (with_traceback K01.kernel stay_cycle_spec) K01.default in
  Alcotest.(check bool) "report carries fsm-stay-cycle error" true
    (has_finding r ~check:"fsm-stay-cycle" ~severity:Report.Error)

let test_fsm_bad_successor () =
  let spec =
    {
      Traceback.fsm =
        {
          Traceback.n_states = 2;
          start_state = 0;
          transition = (fun _ ~ptr:_ -> (5, Traceback.Diag));
        };
      stop = Traceback.At_origin;
    }
  in
  let issues = Fsm_check.check spec ~tb_bits:2 in
  Alcotest.(check bool) "successor out of range" true
    (List.exists
       (function Fsm_check.Bad_successor { next = 5; _ } -> true | _ -> false)
       issues);
  let r = check_kernel (with_traceback K01.kernel spec) K01.default in
  Alcotest.(check bool) "report carries fsm-successor-range error" true
    (has_finding r ~check:"fsm-successor-range" ~severity:Report.Error)

let test_fsm_no_stop () =
  let spec =
    {
      Traceback.fsm =
        {
          Traceback.n_states = 1;
          start_state = 0;
          transition = (fun _ ~ptr:_ -> (0, Traceback.Diag));
        };
      stop = Traceback.On_stop_move;
    }
  in
  let issues = Fsm_check.check spec ~tb_bits:2 in
  Alcotest.(check bool) "no-stop flagged" true
    (List.mem Fsm_check.No_stop_emitted issues)

let test_fsm_catalog_specs_clean () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let (Registry.Packed (k, p)) = e.packed in
      match k.Kernel.traceback p with
      | None -> ()
      | Some spec ->
        let errors =
          List.filter Fsm_check.is_error (Fsm_check.check spec ~tb_bits:k.Kernel.tb_bits)
        in
        if errors <> [] then
          Alcotest.failf "kernel #%d FSM: %s" k.Kernel.id
            (String.concat "; " (List.map Fsm_check.describe errors)))
    Dphls_kernels.Catalog.all

(* ---- pointer width vs tb_bits ---- *)

let test_pointer_width () =
  let k =
    {
      K01.kernel with
      Kernel.pe =
        (fun p ->
          let f = K01.kernel.Kernel.pe p in
          fun input -> { (f input) with Pe.tb = 5 });
      pe_flat = None;
    }
  in
  let r = check_kernel k K01.default in
  Alcotest.(check bool) "report carries tb-pointer-width error" true
    (has_finding r ~check:"tb-pointer-width" ~severity:Report.Error);
  (* with traceback disabled the emitted pointer is never stored, so the
     same PE must pass (kernel #14's sDTW shape) *)
  let no_tb = { k with Kernel.traceback = (fun _ -> None); tb_bits = 0 } in
  let r = check_kernel no_tb K01.default in
  Alcotest.(check bool) "unstored pointers are not findings" false
    (has_finding r ~check:"tb-pointer-width" ~severity:Report.Error)

(* ---- banding / parallelism lint ---- *)

let test_adaptive_threshold_lint () =
  let k =
    { K01.kernel with Kernel.banding = Some (Banding.adaptive ~threshold:10000 32) }
  in
  let r = check_kernel k K01.default in
  Alcotest.(check bool) "report carries band-threshold warning" true
    (has_finding r ~check:"band-threshold" ~severity:Report.Warning);
  let sane =
    { K01.kernel with Kernel.banding = Some (Banding.adaptive ~threshold:40 32) }
  in
  let r = check_kernel sane K01.default in
  Alcotest.(check bool) "sane threshold passes" false
    (has_finding r ~check:"band-threshold" ~severity:Report.Warning)

let test_band_covers_matrix () =
  let k = { K01.kernel with Kernel.banding = Some (Banding.fixed 64) } in
  let r = check_kernel ~max_len:32 k K01.default in
  Alcotest.(check bool) "band wider than matrix warned" true
    (has_finding r ~check:"band-covers-matrix" ~severity:Report.Warning)

let test_parallelism_lint () =
  let r = check_kernel ~n_pe:256 ~max_len:128 K01.kernel K01.default in
  Alcotest.(check bool) "idle PEs warned" true
    (has_finding r ~check:"n-pe-oversized" ~severity:Report.Warning);
  let r = check_kernel ~n_pe:48 ~max_len:128 K01.kernel K01.default in
  Alcotest.(check bool) "ragged chunking noted" true
    (has_finding r ~check:"n-pe-chunking" ~severity:Report.Info)

(* ---- structural validation (Kernel.validate satellite) ---- *)

let test_validate_start_state () =
  let bad_spec =
    {
      stay_cycle_spec with
      Traceback.fsm = { stay_cycle_spec.Traceback.fsm with Traceback.start_state = 9 };
    }
  in
  let k = with_traceback K01.kernel bad_spec in
  Alcotest.(check bool) "structural finding named" true
    (List.exists
       (fun (check, _) -> check = "fsm-start-state")
       (Kernel.structural_findings k K01.default));
  match Kernel.validate k K01.default with
  | () -> Alcotest.fail "validate must reject start_state 9"
  | exception Invalid_argument _ -> ()

(* ---- walker failsafe diagnostic (both engines share Walker.walk) ---- *)

let test_walker_diagnostic () =
  let k = with_traceback K01.kernel stay_cycle_spec in
  let rng = Dphls_util.Rng.create 3 in
  let w = K01.gen rng ~len:8 in
  match Dphls_reference.Ref_engine.run k K01.default w with
  | _ -> Alcotest.fail "stay-cycle traceback must trip the failsafe"
  | exception Failure msg ->
    List.iter
      (fun part ->
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic mentions %S" part)
          true (contains msg part))
      [ "Walker.walk"; "state="; "ptr="; "cell="; "dphls check" ]

(* ---- report formatting ---- *)

let test_report_json () =
  let r =
    Report.create ~kernel_id:3 ~kernel_name:"demo" ~max_len:64
      [
        Report.info ~check:"a" "fine";
        Report.error ~check:"b" "broke \"here\"\n";
      ]
  in
  Alcotest.(check bool) "errors counted" true (Report.errors r = 1);
  Alcotest.(check bool) "not clean" false (Report.clean r);
  let json = Report.to_json r in
  List.iter
    (fun part ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" part) true
        (contains json part))
    [
      {|"kernel": {"id": 3, "name": "demo"}|};
      {|"errors": 1|};
      {|broke \"here\"\n|};
    ];
  (* errors sort first *)
  (match r.Report.findings with
  | { Report.check = "b"; _ } :: _ -> ()
  | _ -> Alcotest.fail "error finding must sort first");
  Alcotest.(check bool) "list json totals errors" true
    (contains (Report.list_to_json [ r; r ]) {|"errors": 2|})

(* ---- datapath analyses: Depend / Ii / Fastpath (seeded-broken specs) ---- *)

module Depend = Dphls_analysis.Depend
module Ii = Dphls_analysis.Ii
module Fastpath = Dphls_analysis.Fastpath
module Json = Dphls_analysis.Json
module Lint = Dphls_analysis.Lint
module Cells = Dphls_kernels.Cells
module Datapaths = Dphls_kernels.Datapaths
module K19 = Dphls_kernels.K19_global_edit

let has_in fs ~check ~severity =
  List.exists
    (fun (f : Report.finding) -> f.Report.check = check && f.Report.severity = severity)
    fs

let edit_bindings = K19.bindings K19.default

let check_with_datapath ?host k p cell bindings =
  Check.run ~datapath:(cell, bindings) ?host ~max_len:128 ~chars:dna_chars
    (Registry.Packed (k, p))

(* Seeded-broken spec 1: a read outside the {NW, N, W} wavefront stencil
   (two rows up), expressible via [Nbr] but unservable by the
   double-buffered engines. *)
let test_depend_out_of_stencil () =
  let open Datapath in
  let cell =
    { Cells.edit_cell with
      layers = [| Add (Nbr (2, 0, 0), Param "indel") |] }
  in
  let d = Depend.analyze cell ~n_layers:1 in
  Alcotest.(check int) "one out-of-stencil read" 1
    (List.length d.Depend.out_of_stencil);
  let r = check_with_datapath K19.kernel K19.default cell edit_bindings in
  Alcotest.(check bool) "report carries depend-out-of-stencil error" true
    (has_finding r ~check:"depend-out-of-stencil" ~severity:Report.Error);
  (* the II pass cannot run on an illegal footprint: it is skipped, not
     crashed *)
  Alcotest.(check bool) "ii skipped after depend errors" true
    (has_finding r ~check:"ii-skipped" ~severity:Report.Info);
  (* and the clean datapath on the same kernel has neither *)
  let ok = check_with_datapath K19.kernel K19.default Cells.edit_cell edit_bindings in
  Alcotest.(check bool) "clean datapath passes" false
    (has_finding ok ~check:"depend-out-of-stencil" ~severity:Report.Error)

let test_depend_catalog_footprints () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let (Registry.Packed (k, _)) = e.packed in
      let cell, _ = Datapaths.cell_for k.Kernel.id in
      let d = Depend.analyze cell ~n_layers:k.Kernel.n_layers in
      if d.Depend.out_of_stencil <> [] || d.Depend.bad_layer <> []
         || d.Depend.cur_violations <> []
      then Alcotest.failf "kernel #%d footprint not clean" k.Kernel.id;
      Alcotest.(check bool)
        (Printf.sprintf "kernel #%d has a loop-carried cycle" k.Kernel.id)
        true
        (List.exists (fun c -> c.Depend.distance > 0) d.Depend.cycles))
    Dphls_kernels.Catalog.all

(* Seeded-broken spec 2: an artificially deep loop-carried chain — 12
   dependent adds between the N neighbour read and the layer register.
   No amount of pipelining can hide it, so the declared depth/tier must
   be flagged. *)
let deep_cell =
  let open Datapath in
  let rec chain n e = if n = 0 then e else chain (n - 1) (Add (e, Const 1)) in
  { layers = [| chain 12 (Up 0) |]; tb_fields = [] }

let test_ii_deep_recurrence () =
  let b = { Datapath.params = []; tables = [] } in
  match Ii.analyze deep_cell b with
  | Error m -> Alcotest.failf "deep cell must compile: %s" m
  | Ok t ->
    Alcotest.(check int) "recurrence depth = chain length" 12
      t.Ii.recurrence_depth;
    Alcotest.(check int) "modeled II stays 1 (distance 1 cycle)" 1 t.Ii.modeled_ii;
    Alcotest.(check (float 0.01)) "recurrence tier is the slowest" 125.0
      t.Ii.modeled_mhz;
    let traits = K19.kernel.Kernel.traits in
    (* declared logic_depth 5 @ 250 MHz vs recurrence bound 12 @ 125 MHz *)
    let fs = Ii.findings t ~traits in
    Alcotest.(check bool) "ii-depth-drift warning" true
      (has_in fs ~check:"ii-depth-drift" ~severity:Report.Warning);
    Alcotest.(check bool) "ii-freq warning" true
      (has_in fs ~check:"ii-freq" ~severity:Report.Warning);
    (* a declared II below the modeled bound is an error, not a warning *)
    let fs0 = Ii.findings t ~traits:{ traits with Traits.ii = 0 } in
    Alcotest.(check bool) "ii-infeasible error" true
      (has_in fs0 ~check:"ii-infeasible" ~severity:Report.Error);
    (* end-to-end: the same seeded datapath surfaces in the report *)
    let r = check_with_datapath K19.kernel K19.default deep_cell edit_bindings in
    Alcotest.(check bool) "report carries ii-depth-drift" true
      (has_finding r ~check:"ii-depth-drift" ~severity:Report.Warning);
    Alcotest.(check bool) "report not clean" false (Report.clean r)

(* Catalog-wide agreement contract: the modeled recurrence bound never
   contradicts the declared traits (no ii-infeasible / ii-depth-drift /
   ii-freq on any kernel), and the modeled II matches the declared one. *)
let test_ii_catalog_agreement () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let (Registry.Packed (k, _)) = e.packed in
      let cell, b = Datapaths.cell_for k.Kernel.id in
      match Ii.analyze cell b with
      | Error m -> Alcotest.failf "kernel #%d: %s" k.Kernel.id m
      | Ok t ->
        let traits = k.Kernel.traits in
        (* declared II may be conservative (kernel #8 declares 4), but
           never below the recurrence bound *)
        Alcotest.(check bool)
          (Printf.sprintf "kernel #%d declared II >= modeled" k.Kernel.id)
          true
          (traits.Traits.ii >= t.Ii.modeled_ii);
        Alcotest.(check bool)
          (Printf.sprintf "kernel #%d recurrence <= full depth" k.Kernel.id)
          true
          (t.Ii.recurrence_depth <= t.Ii.full_depth);
        let fs = Ii.findings t ~traits in
        Alcotest.(check bool)
          (Printf.sprintf "kernel #%d ii-path derivation present" k.Kernel.id)
          true
          (has_in fs ~check:"ii-path" ~severity:Report.Info);
        List.iter
          (fun (f : Report.finding) ->
            if f.Report.severity <> Report.Info then
              Alcotest.failf "kernel #%d II disagreement: %s: %s" k.Kernel.id
                f.Report.check f.Report.message)
          fs)
    Dphls_kernels.Catalog.all

(* Seeded near-miss 3: the edit-distance shape with substitution cost 2
   but indel cost 1 — structurally identical to the eligible kernel, so
   the classifier must name the exact disqualifying inequality. *)
let test_fastpath_near_miss () =
  let b = { Datapath.params = [ ("sub", 2); ("indel", 1) ]; tables = [] } in
  (match Fastpath.classify Cells.edit_cell b with
  | Fastpath.Eligible _ -> Alcotest.fail "sub<>indel must be ineligible"
  | Fastpath.Ineligible { property } ->
    Alcotest.(check bool) "names the differing costs" true
      (contains property "substitution cost 2 and indel costs 1/1 differ"));
  (* scaled-unit costs stay eligible: distance = 3 x Levenshtein *)
  let b3 = { Datapath.params = [ ("sub", 3); ("indel", 3) ]; tables = [] } in
  match Fastpath.classify Cells.edit_cell b3 with
  | Fastpath.Eligible { scale; _ } -> Alcotest.(check int) "scale" 3 scale
  | Fastpath.Ineligible { property } ->
    Alcotest.failf "uniform cost 3 must be eligible, got: %s" property

let test_fastpath_catalog () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let (Registry.Packed (k, _)) = e.packed in
      let cell, b = Datapaths.cell_for k.Kernel.id in
      match (Fastpath.classify cell b, k.Kernel.id) with
      | Fastpath.Eligible { scale; _ }, 19 ->
        Alcotest.(check int) "unit-cost kernel: scale 1" 1 scale
      | Fastpath.Eligible _, id ->
        Alcotest.failf "kernel #%d unexpectedly bit-parallel eligible" id
      | Fastpath.Ineligible _, 19 ->
        Alcotest.fail "kernel #19 must be bit-parallel eligible"
      | Fastpath.Ineligible { property }, id ->
        Alcotest.(check bool)
          (Printf.sprintf "kernel #%d disqualifier non-empty" id)
          true
          (String.length property > 0))
    Dphls_kernels.Catalog.all

(* ---- strict JSON parser ---- *)

let test_json_parser () =
  (match Json.parse {|  {"a": [1.5, true, null, "x\u00e9\ud83d\ude00"], "b": -0.25e1} |} with
  | Ok
      (Json.Obj
        [ ("a", Json.Arr [ Json.Num a; Json.Bool true; Json.Null; Json.Str s ]);
          ("b", Json.Num b) ]) ->
    Alcotest.(check (float 0.0)) "number" 1.5 a;
    Alcotest.(check (float 0.0)) "exponent" (-2.5) b;
    Alcotest.(check string) "\\u escapes (incl. surrogate pair) decode to UTF-8"
      "x\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "parsed to the wrong shape"
  | Error e -> Alcotest.failf "valid document rejected: %s" e);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [
      "{";                   (* unterminated object *)
      "[1,]";                (* trailing comma *)
      "01";                  (* leading zero *)
      "1.";                  (* digits required after the point *)
      "1e";                  (* digits required in the exponent *)
      "\"\n\"";              (* bare control character *)
      "\"\\q\"";             (* unknown escape *)
      "\"\\ud800\"";         (* unpaired surrogate *)
      "nul";                 (* truncated literal *)
      "{} x";                (* trailing garbage *)
      {|{"a":1 "b":2}|};     (* missing comma *)
    ]

(* Round-trip law: [Report.of_json (to_json r) = Ok r] for arbitrary
   reports, including messages full of quotes, control characters and
   non-ASCII bytes (RFC 8259 escaping). *)
let report_arbitrary =
  let open QCheck in
  let severity =
    Gen.oneofl [ Report.Error; Report.Warning; Report.Info ]
  in
  let finding =
    Gen.map3
      (fun check severity message -> Report.finding ~check ~severity message)
      Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; '-' ]) (1 -- 12))
      severity Gen.string
  in
  let report =
    Gen.map3
      (fun (id, max_len) name findings ->
        Report.create ~kernel_id:id ~kernel_name:name ~max_len findings)
      Gen.(pair (0 -- 99) (1 -- 10_000))
      Gen.string
      Gen.(list_size (0 -- 8) finding)
  in
  make ~print:Report.to_json report

let test_json_roundtrip =
  QCheck.Test.make ~name:"Report.of_json inverts to_json" ~count:300
    report_arbitrary (fun r ->
      match Report.of_json (Report.to_json r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "rejected own output: %s" e)

let test_json_list_roundtrip =
  QCheck.Test.make ~name:"Report.list_of_json inverts list_to_json" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 5) report_arbitrary)
    (fun rs ->
      match Report.list_of_json (Report.list_to_json rs) with
      | Ok rs' -> rs' = rs
      | Error e -> QCheck.Test.fail_reportf "rejected own output: %s" e)

let test_json_tamper_detected () =
  let r =
    Report.create ~kernel_id:1 ~kernel_name:"demo" ~max_len:64
      [ Report.error ~check:"b" "broke" ]
  in
  (* flip the summary error count: the strict parser must refuse it *)
  let replace_once ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then s
      else if String.sub s i m = sub then
        String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
      else go (i + 1)
    in
    go 0
  in
  let tampered =
    replace_once ~sub:{|"errors": 1|} ~by:{|"errors": 0|} (Report.to_json r)
  in
  match Report.of_json tampered with
  | Ok _ -> Alcotest.fail "summary/findings mismatch must be rejected"
  | Error e ->
    Alcotest.(check bool) "error mentions the summary" true
      (contains e "summary" || contains e "errors")

(* The committed CI baseline (test/data/check_baseline.json, the
   [dphls check --all --json] artifact) must parse under the strict
   reader, report zero errors, and byte-match a fresh regeneration —
   the same seeded sampling the CLI uses, so any analysis drift fails
   here before CI diffs it. Regenerate with
   [dune exec bin/dphls.exe -- check --all --json]. *)
let test_check_baseline_fresh () =
  let path = "data/check_baseline.json" in
  let ic = open_in_bin path in
  let committed = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Report.list_of_json committed with
  | Error e -> Alcotest.failf "committed baseline does not parse: %s" e
  | Ok reports ->
    Alcotest.(check int) "one report per catalog kernel"
      (List.length Dphls_kernels.Catalog.all)
      (List.length reports);
    List.iter
      (fun r ->
        Alcotest.(check int)
          (Printf.sprintf "kernel #%d baseline has no errors" r.Report.kernel_id)
          0 (Report.errors r))
      reports);
  let fresh =
    Report.list_to_json
      (List.map
         (fun (e : Dphls_kernels.Catalog.entry) ->
           let rng = Dphls_util.Rng.create 7 in
           let sample = e.gen rng ~len:(min 64 e.max_len) in
           let chars = Check.chars_of_workload sample in
           let datapath =
             Datapaths.cell_for (Registry.id e.packed)
           in
           Check.run ~n_pe:e.optimal.n_pe ~datapath ~max_len:e.max_len ~chars
             e.packed)
         Dphls_kernels.Catalog.all)
    ^ "\n"
  in
  if not (String.equal fresh committed) then
    Alcotest.fail
      "check findings drifted from test/data/check_baseline.json — review the \
       diff and regenerate with `dune exec bin/dphls.exe -- check --all --json`"

(* ---- domain-safety lint + Metrics owner guard ---- *)

let test_domain_safety_lint () =
  let shared = { Lint.workers = 4; shared_metrics_sink = true } in
  Alcotest.(check bool) "shared multi-worker sink warned" true
    (has_in (Lint.domain_safety (Some shared)) ~check:"metrics-domain-safety"
       ~severity:Report.Warning);
  Alcotest.(check int) "single worker is fine" 0
    (List.length (Lint.domain_safety (Some { shared with Lint.workers = 1 })));
  Alcotest.(check int) "per-domain sinks are fine" 0
    (List.length
       (Lint.domain_safety (Some { shared with Lint.shared_metrics_sink = false })));
  Alcotest.(check int) "no host config, no finding" 0
    (List.length (Lint.domain_safety None));
  (* end-to-end through Check.run's ?host *)
  let r =
    check_with_datapath ~host:shared K19.kernel K19.default Cells.edit_cell
      edit_bindings
  in
  Alcotest.(check bool) "report carries metrics-domain-safety warning" true
    (has_finding r ~check:"metrics-domain-safety" ~severity:Report.Warning)

let test_metrics_owner_guard () =
  let module M = Dphls_obs.Metrics in
  let module C = Dphls_obs.Counter in
  let sink = M.create () in
  let c = C.all.(0) in
  M.add sink c 1;
  M.guard_domains true;
  Fun.protect
    ~finally:(fun () -> M.guard_domains false)
    (fun () ->
      M.add sink c 1;
      (* owner domain still allowed *)
      let cross =
        Domain.join
          (Domain.spawn (fun () ->
               match M.add sink c 1 with
               | () -> None
               | exception Failure msg -> Some msg))
      in
      match cross with
      | None -> Alcotest.fail "cross-domain bump must fail under the guard"
      | Some msg ->
        List.iter
          (fun part ->
            Alcotest.(check bool)
              (Printf.sprintf "guard message mentions %S" part)
              true (contains msg part))
          [ C.name c; "domain"; "merge_into" ]);
  (* guard off: the racy write is permitted again (production default) *)
  Domain.join (Domain.spawn (fun () -> M.add sink c 1));
  Alcotest.(check int) "only the successful bumps counted" 3 (M.get sink c)

let suite =
  [
    Alcotest.test_case "interval domain" `Quick test_interval;
    Alcotest.test_case "catalog checks clean" `Quick test_catalog_clean;
    Alcotest.test_case "catalog max_len bounds" `Quick test_catalog_max_len_bounds;
    Alcotest.test_case "undersized score_bits flagged" `Quick test_undersized_score_bits;
    Alcotest.test_case "FSM stay cycle flagged" `Quick test_fsm_stay_cycle;
    Alcotest.test_case "FSM bad successor flagged" `Quick test_fsm_bad_successor;
    Alcotest.test_case "FSM missing stop flagged" `Quick test_fsm_no_stop;
    Alcotest.test_case "catalog FSMs model-check clean" `Quick test_fsm_catalog_specs_clean;
    Alcotest.test_case "pointer width vs tb_bits" `Quick test_pointer_width;
    Alcotest.test_case "adaptive threshold lint" `Quick test_adaptive_threshold_lint;
    Alcotest.test_case "band covers matrix lint" `Quick test_band_covers_matrix;
    Alcotest.test_case "parallelism lint" `Quick test_parallelism_lint;
    Alcotest.test_case "validate rejects bad start_state" `Quick test_validate_start_state;
    Alcotest.test_case "walker failsafe diagnostic" `Quick test_walker_diagnostic;
    Alcotest.test_case "report json" `Quick test_report_json;
    Alcotest.test_case "depend: out-of-stencil read flagged" `Quick
      test_depend_out_of_stencil;
    Alcotest.test_case "depend: catalog footprints clean" `Quick
      test_depend_catalog_footprints;
    Alcotest.test_case "ii: deep recurrence chain flagged" `Quick
      test_ii_deep_recurrence;
    Alcotest.test_case "ii: catalog agrees with declared traits" `Quick
      test_ii_catalog_agreement;
    Alcotest.test_case "fastpath: near-miss names the inequality" `Quick
      test_fastpath_near_miss;
    Alcotest.test_case "fastpath: catalog verdicts" `Quick test_fastpath_catalog;
    Alcotest.test_case "json: strict parser" `Quick test_json_parser;
    QCheck_alcotest.to_alcotest test_json_roundtrip;
    QCheck_alcotest.to_alcotest test_json_list_roundtrip;
    Alcotest.test_case "json: summary tamper detected" `Quick
      test_json_tamper_detected;
    Alcotest.test_case "check baseline parses and is fresh" `Quick
      test_check_baseline_fresh;
    Alcotest.test_case "lint: metrics domain safety" `Quick test_domain_safety_lint;
    Alcotest.test_case "metrics: owner-domain guard" `Quick test_metrics_owner_guard;
  ]
