(* Tests for the pre-synthesis kernel checker (Dphls_analysis): the
   catalog must check clean, and each analysis must flag a seeded-broken
   spec — an undersized score width, a Stay-cycle FSM, an out-of-range
   successor, a pointer wider than tb_bits, a useless adaptive band
   threshold. *)
open Dphls_core
module Score = Dphls_util.Score
module Interval = Dphls_analysis.Interval
module Widths = Dphls_analysis.Widths
module Fsm_check = Dphls_analysis.Fsm_check
module Report = Dphls_analysis.Report
module Check = Dphls_analysis.Check
module K01 = Dphls_kernels.K01_global_linear

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has_finding r ~check ~severity =
  List.exists
    (fun (f : Report.finding) -> f.Report.check = check && f.Report.severity = severity)
    r.Report.findings

(* A few DNA character pairs (match and mismatch) for direct analyzer
   calls on kernels whose workloads we don't generate. *)
let dna_chars =
  [| ([| 0 |], [| 0 |]); ([| 1 |], [| 1 |]); ([| 0 |], [| 2 |]); ([| 3 |], [| 1 |]) |]

let check_kernel ?n_pe ?(max_len = 128) k p =
  Check.run ?n_pe ~max_len ~chars:dna_chars (Registry.Packed (k, p))

(* ---- interval domain ---- *)

let test_interval () =
  let open Interval in
  Alcotest.(check bool) "empty is empty" true (is_empty empty);
  let s = of_score Score.neg_inf in
  Alcotest.(check bool) "-inf flag" true s.neg_inf;
  Alcotest.(check bool) "-inf not finite" false s.finite;
  let iv = observe (observe empty 5) (-3) in
  Alcotest.(check int) "lo" (-3) iv.lo;
  Alcotest.(check int) "hi" 5 iv.hi;
  Alcotest.(check bool) "join flags" true (join iv s).neg_inf;
  Alcotest.(check bool) "8-bit fits" true
    (fits { lo = -128; hi = 127; finite = true; neg_inf = false; pos_inf = false }
       ~bits:8);
  Alcotest.(check bool) "8-bit lo overflow" false
    (fits { lo = -129; hi = 0; finite = true; neg_inf = false; pos_inf = false }
       ~bits:8);
  Alcotest.(check bool) "sentinels exempt" true (fits s ~bits:8);
  Alcotest.(check (option int)) "low repr prefers sentinel" (Some Score.neg_inf)
    (low_value (join iv s));
  Alcotest.(check (option int)) "finite low" (Some (-3)) (finite_low (join iv s))

(* ---- catalog is clean ---- *)

let test_catalog_clean () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let rng = Dphls_util.Rng.create 11 in
      let sample = e.gen rng ~len:64 in
      let chars = Check.chars_of_workload sample in
      Alcotest.(check bool)
        (Printf.sprintf "kernel #%d has char samples" (Registry.id e.packed))
        true
        (Array.length chars > 0);
      List.iter
        (fun max_len ->
          let r = Check.run ~n_pe:e.optimal.n_pe ~max_len ~chars e.packed in
          if not (Report.clean r) then
            Alcotest.failf "kernel #%d %s not clean at max_len %d:@\n%s"
              (Registry.id e.packed) (Registry.name e.packed) max_len
              (Format.asprintf "%a" Report.pp r))
        [ e.default_len; e.max_len ])
    Dphls_kernels.Catalog.all

let test_catalog_max_len_bounds () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "kernel #%d default_len <= max_len" (Registry.id e.packed))
        true
        (e.default_len <= e.max_len))
    Dphls_kernels.Catalog.all

(* ---- width analysis flags undersized score_bits ---- *)

let test_undersized_score_bits () =
  let k = { K01.kernel with Kernel.score_bits = 8 } in
  let w = Widths.analyze k K01.default ~max_len:128 ~chars:dna_chars in
  (match w.Widths.verdict with
  | Widths.Overflow { layer; max_safe_len; _ } ->
    Alcotest.(check int) "primary layer overflows" 0 layer;
    Alcotest.(check bool)
      (Printf.sprintf "max_safe_len %d sane" max_safe_len)
      true
      (max_safe_len >= 8 && max_safe_len < 128)
  | Widths.Safe _ -> Alcotest.fail "8-bit scores must overflow at +-2/cell");
  let r = check_kernel k K01.default in
  Alcotest.(check bool) "report carries width-overflow error" true
    (has_finding r ~check:"width-overflow" ~severity:Report.Error);
  (* and the real 16-bit spec is safe at the same bound *)
  let ok = Widths.analyze K01.kernel K01.default ~max_len:128 ~chars:dna_chars in
  match ok.Widths.verdict with
  | Widths.Safe _ -> ()
  | Widths.Overflow _ -> Alcotest.fail "16-bit global-linear must be safe at 128"

(* ---- FSM model checking ---- *)

let with_traceback k spec = { k with Kernel.traceback = (fun _ -> Some spec) }

let stay_cycle_spec =
  {
    Traceback.fsm =
      {
        Traceback.n_states = 2;
        start_state = 0;
        transition =
          (fun s ~ptr -> if ptr = 0 then (1 - s, Traceback.Stay) else (0, Traceback.Diag));
      };
    stop = Traceback.At_origin;
  }

let test_fsm_stay_cycle () =
  let issues = Fsm_check.check stay_cycle_spec ~tb_bits:2 in
  Alcotest.(check bool) "cycle found" true
    (List.exists (function Fsm_check.Stay_cycle { ptr = 0; _ } -> true | _ -> false) issues);
  let r = check_kernel (with_traceback K01.kernel stay_cycle_spec) K01.default in
  Alcotest.(check bool) "report carries fsm-stay-cycle error" true
    (has_finding r ~check:"fsm-stay-cycle" ~severity:Report.Error)

let test_fsm_bad_successor () =
  let spec =
    {
      Traceback.fsm =
        {
          Traceback.n_states = 2;
          start_state = 0;
          transition = (fun _ ~ptr:_ -> (5, Traceback.Diag));
        };
      stop = Traceback.At_origin;
    }
  in
  let issues = Fsm_check.check spec ~tb_bits:2 in
  Alcotest.(check bool) "successor out of range" true
    (List.exists
       (function Fsm_check.Bad_successor { next = 5; _ } -> true | _ -> false)
       issues);
  let r = check_kernel (with_traceback K01.kernel spec) K01.default in
  Alcotest.(check bool) "report carries fsm-successor-range error" true
    (has_finding r ~check:"fsm-successor-range" ~severity:Report.Error)

let test_fsm_no_stop () =
  let spec =
    {
      Traceback.fsm =
        {
          Traceback.n_states = 1;
          start_state = 0;
          transition = (fun _ ~ptr:_ -> (0, Traceback.Diag));
        };
      stop = Traceback.On_stop_move;
    }
  in
  let issues = Fsm_check.check spec ~tb_bits:2 in
  Alcotest.(check bool) "no-stop flagged" true
    (List.mem Fsm_check.No_stop_emitted issues)

let test_fsm_catalog_specs_clean () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let (Registry.Packed (k, p)) = e.packed in
      match k.Kernel.traceback p with
      | None -> ()
      | Some spec ->
        let errors =
          List.filter Fsm_check.is_error (Fsm_check.check spec ~tb_bits:k.Kernel.tb_bits)
        in
        if errors <> [] then
          Alcotest.failf "kernel #%d FSM: %s" k.Kernel.id
            (String.concat "; " (List.map Fsm_check.describe errors)))
    Dphls_kernels.Catalog.all

(* ---- pointer width vs tb_bits ---- *)

let test_pointer_width () =
  let k =
    {
      K01.kernel with
      Kernel.pe =
        (fun p ->
          let f = K01.kernel.Kernel.pe p in
          fun input -> { (f input) with Pe.tb = 5 });
      pe_flat = None;
    }
  in
  let r = check_kernel k K01.default in
  Alcotest.(check bool) "report carries tb-pointer-width error" true
    (has_finding r ~check:"tb-pointer-width" ~severity:Report.Error);
  (* with traceback disabled the emitted pointer is never stored, so the
     same PE must pass (kernel #14's sDTW shape) *)
  let no_tb = { k with Kernel.traceback = (fun _ -> None); tb_bits = 0 } in
  let r = check_kernel no_tb K01.default in
  Alcotest.(check bool) "unstored pointers are not findings" false
    (has_finding r ~check:"tb-pointer-width" ~severity:Report.Error)

(* ---- banding / parallelism lint ---- *)

let test_adaptive_threshold_lint () =
  let k =
    { K01.kernel with Kernel.banding = Some (Banding.adaptive ~threshold:10000 32) }
  in
  let r = check_kernel k K01.default in
  Alcotest.(check bool) "report carries band-threshold warning" true
    (has_finding r ~check:"band-threshold" ~severity:Report.Warning);
  let sane =
    { K01.kernel with Kernel.banding = Some (Banding.adaptive ~threshold:40 32) }
  in
  let r = check_kernel sane K01.default in
  Alcotest.(check bool) "sane threshold passes" false
    (has_finding r ~check:"band-threshold" ~severity:Report.Warning)

let test_band_covers_matrix () =
  let k = { K01.kernel with Kernel.banding = Some (Banding.fixed 64) } in
  let r = check_kernel ~max_len:32 k K01.default in
  Alcotest.(check bool) "band wider than matrix warned" true
    (has_finding r ~check:"band-covers-matrix" ~severity:Report.Warning)

let test_parallelism_lint () =
  let r = check_kernel ~n_pe:256 ~max_len:128 K01.kernel K01.default in
  Alcotest.(check bool) "idle PEs warned" true
    (has_finding r ~check:"n-pe-oversized" ~severity:Report.Warning);
  let r = check_kernel ~n_pe:48 ~max_len:128 K01.kernel K01.default in
  Alcotest.(check bool) "ragged chunking noted" true
    (has_finding r ~check:"n-pe-chunking" ~severity:Report.Info)

(* ---- structural validation (Kernel.validate satellite) ---- *)

let test_validate_start_state () =
  let bad_spec =
    {
      stay_cycle_spec with
      Traceback.fsm = { stay_cycle_spec.Traceback.fsm with Traceback.start_state = 9 };
    }
  in
  let k = with_traceback K01.kernel bad_spec in
  Alcotest.(check bool) "structural finding named" true
    (List.exists
       (fun (check, _) -> check = "fsm-start-state")
       (Kernel.structural_findings k K01.default));
  match Kernel.validate k K01.default with
  | () -> Alcotest.fail "validate must reject start_state 9"
  | exception Invalid_argument _ -> ()

(* ---- walker failsafe diagnostic (both engines share Walker.walk) ---- *)

let test_walker_diagnostic () =
  let k = with_traceback K01.kernel stay_cycle_spec in
  let rng = Dphls_util.Rng.create 3 in
  let w = K01.gen rng ~len:8 in
  match Dphls_reference.Ref_engine.run k K01.default w with
  | _ -> Alcotest.fail "stay-cycle traceback must trip the failsafe"
  | exception Failure msg ->
    List.iter
      (fun part ->
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic mentions %S" part)
          true (contains msg part))
      [ "Walker.walk"; "state="; "ptr="; "cell="; "dphls check" ]

(* ---- report formatting ---- *)

let test_report_json () =
  let r =
    Report.create ~kernel_id:3 ~kernel_name:"demo" ~max_len:64
      [
        Report.info ~check:"a" "fine";
        Report.error ~check:"b" "broke \"here\"\n";
      ]
  in
  Alcotest.(check bool) "errors counted" true (Report.errors r = 1);
  Alcotest.(check bool) "not clean" false (Report.clean r);
  let json = Report.to_json r in
  List.iter
    (fun part ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" part) true
        (contains json part))
    [
      {|"kernel": {"id": 3, "name": "demo"}|};
      {|"errors": 1|};
      {|broke \"here\"\n|};
    ];
  (* errors sort first *)
  (match r.Report.findings with
  | { Report.check = "b"; _ } :: _ -> ()
  | _ -> Alcotest.fail "error finding must sort first");
  Alcotest.(check bool) "list json totals errors" true
    (contains (Report.list_to_json [ r; r ]) {|"errors": 2|})

let suite =
  [
    Alcotest.test_case "interval domain" `Quick test_interval;
    Alcotest.test_case "catalog checks clean" `Quick test_catalog_clean;
    Alcotest.test_case "catalog max_len bounds" `Quick test_catalog_max_len_bounds;
    Alcotest.test_case "undersized score_bits flagged" `Quick test_undersized_score_bits;
    Alcotest.test_case "FSM stay cycle flagged" `Quick test_fsm_stay_cycle;
    Alcotest.test_case "FSM bad successor flagged" `Quick test_fsm_bad_successor;
    Alcotest.test_case "FSM missing stop flagged" `Quick test_fsm_no_stop;
    Alcotest.test_case "catalog FSMs model-check clean" `Quick test_fsm_catalog_specs_clean;
    Alcotest.test_case "pointer width vs tb_bits" `Quick test_pointer_width;
    Alcotest.test_case "adaptive threshold lint" `Quick test_adaptive_threshold_lint;
    Alcotest.test_case "band covers matrix lint" `Quick test_band_covers_matrix;
    Alcotest.test_case "parallelism lint" `Quick test_parallelism_lint;
    Alcotest.test_case "validate rejects bad start_state" `Quick test_validate_start_state;
    Alcotest.test_case "walker failsafe diagnostic" `Quick test_walker_diagnostic;
    Alcotest.test_case "report json" `Quick test_report_json;
  ]
