(* Pluggable-engine layer: the Myers bit-parallel core against a scalar
   oracle, the registry backends against the golden engine, the auto
   dispatch policy, and the --engine CLI surface. *)
open Dphls_core
module Myers = Dphls_bitpar.Myers
module BEngine = Dphls_bitpar.Engine
module Engine_intf = Dphls_engines.Engine_intf
module Backends = Dphls_engines.Backends
module Engines = Dphls_engines.Engines

let qtest = QCheck_alcotest.to_alcotest

(* ---- scalar oracle: banded unit-cost Levenshtein, worst = +inf ---- *)

let scalar_edit ?width ~query ~reference () =
  let m = Array.length query and n = Array.length reference in
  let inf = max_int / 4 in
  let in_band i j =
    match width with None -> true | Some w -> abs (i - j) <= w
  in
  let prev = Array.make (n + 1) 0 and cur = Array.make (n + 1) 0 in
  for j = 0 to n do
    (* virtual row -1: D(-1,j) = j+1 stored at prev.(j) shifted by one *)
    prev.(j) <- j
  done;
  for i = 0 to m - 1 do
    cur.(0) <- i + 1;
    for j = 0 to n - 1 do
      cur.(j + 1) <-
        (if in_band i j then
           let sub = if query.(i) = reference.(j) then 0 else 1 in
           min
             (prev.(j) + sub)
             (min (prev.(j + 1) + 1) (cur.(j) + 1))
         else inf)
    done;
    Array.blit cur 0 prev 0 (n + 1)
  done;
  if prev.(n) >= inf then None else Some prev.(n)

let random_ints rng ~len ~alpha = Array.init len (fun _ -> Dphls_util.Rng.int rng alpha)

(* Word-boundary lengths from the satellite spec plus the native word
   size (62 cells per OCaml int), and some small fill-ins. *)
let boundary_lengths = [ 1; 2; 7; 61; 62; 63; 64; 65; 123; 124; 125; 127; 128; 129 ]

let test_myers_boundaries () =
  let rng = Dphls_util.Rng.create 91 in
  List.iter
    (fun lq ->
      List.iter
        (fun lr ->
          let query = random_ints rng ~len:lq ~alpha:4
          and reference = random_ints rng ~len:lr ~alpha:4 in
          let expect = scalar_edit ~query ~reference () in
          Alcotest.(check (option int))
            (Printf.sprintf "D %dx%d" lq lr)
            expect
            (Some (Myers.distance ~query ~reference)))
        [ 1; 61; 62; 63; 64; 65; 127; 128; 129 ])
    boundary_lengths

let prop_myers_unbanded =
  QCheck.Test.make ~name:"myers: unbanded == scalar oracle" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create seed in
      let lq = 1 + Dphls_util.Rng.int rng 200
      and lr = 1 + Dphls_util.Rng.int rng 200
      and alpha = 1 + Dphls_util.Rng.int rng 6 in
      let query = random_ints rng ~len:lq ~alpha
      and reference = random_ints rng ~len:lr ~alpha in
      scalar_edit ~query ~reference ()
      = Some (Myers.distance ~query ~reference))

let prop_myers_banded =
  QCheck.Test.make ~name:"myers: fixed band == scalar banded oracle" ~count:400
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create seed in
      (* bands narrower than one word, lengths straddling words *)
      let width = 1 + Dphls_util.Rng.int rng 12 in
      let lq = 1 + Dphls_util.Rng.int rng 140 in
      let dl = Dphls_util.Rng.int rng (2 * width + 4) - (width + 2) in
      let lr = max 1 (lq + dl) in
      let query = random_ints rng ~len:lq ~alpha:4
      and reference = random_ints rng ~len:lr ~alpha:4 in
      scalar_edit ~width ~query ~reference ()
      = Myers.distance_banded ~query ~reference ~width)

(* ---- scalar oracle: max-plus global DP for the Doubled mapping ---- *)

let scalar_maxplus ?width ~match_ ~mismatch ~gap ~query ~reference () =
  let m = Array.length query and n = Array.length reference in
  let neg_inf = min_int / 4 in
  let in_band i j =
    match width with None -> true | Some w -> abs (i - j) <= w
  in
  let prev = Array.make (n + 1) 0 and cur = Array.make (n + 1) 0 in
  for j = 0 to n do
    prev.(j) <- j * gap
  done;
  for i = 0 to m - 1 do
    cur.(0) <- (i + 1) * gap;
    for j = 0 to n - 1 do
      cur.(j + 1) <-
        (if in_band i j then
           let s = if query.(i) = reference.(j) then match_ else mismatch in
           max
             (prev.(j) + s)
             (max (prev.(j + 1) + gap) (cur.(j) + gap))
         else neg_inf)
    done;
    Array.blit cur 0 prev 0 (n + 1)
  done;
  prev.(n)

(* The Doubled mapping against the scalar max-plus oracle, on parameter
   triples satisfying the doubled-weight identity 2(match - mismatch) =
   match - 2 gap (w2 even since match is). The registry cannot reach
   this mapping from catalog kernels (no max-plus kernel qualifies with
   default bindings), so the engine API is fuzzed directly. *)
let prop_doubled_mapping =
  QCheck.Test.make ~name:"bitpar: doubled max-plus mapping == scalar DP"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create seed in
      let match_ = 2 * (1 + Dphls_util.Rng.int rng 4) in
      let gap = -1 - Dphls_util.Rng.int rng 4 in
      let weight2 = match_ - (2 * gap) in
      let mismatch = match_ - (weight2 / 2) in
      let banded = Dphls_util.Rng.int rng 2 = 1 in
      let width = 2 + Dphls_util.Rng.int rng 10 in
      let lq = 1 + Dphls_util.Rng.int rng 120 in
      let lr =
        if banded then max 1 (lq + Dphls_util.Rng.int rng (width + 1) - (width / 2))
        else 1 + Dphls_util.Rng.int rng 120
      in
      let query = random_ints rng ~len:lq ~alpha:4
      and reference = random_ints rng ~len:lr ~alpha:4 in
      let w = Workload.of_bases ~query ~reference in
      let band = if banded then Some (Banding.fixed width) else None in
      let r = BEngine.run ?band (BEngine.Doubled { match_; weight2 }) w in
      let expect =
        scalar_maxplus ?width:(if banded then Some width else None) ~match_
          ~mismatch ~gap ~query ~reference ()
      in
      r.Result.score = expect)

(* ---- kernel #19 through the registry backends vs the golden engine ---- *)

let k19 = Dphls_kernels.K19_global_edit.kernel
let cfg16 = Engine_intf.config ~n_pe:16 ()

let prop_bitpar_backend_vs_golden =
  QCheck.Test.make
    ~name:"bitpar backend: #19 scores == golden engine (random costs, bands)"
    ~count:250
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Dphls_util.Rng.create seed in
      let c = 1 + Dphls_util.Rng.int rng 4 in
      let p = { Dphls_kernels.K19_global_edit.sub = c; indel = c } in
      (* lengths biased onto word boundaries (the 62-bit packing seams) *)
      let pick_len () =
        match Dphls_util.Rng.int rng 3 with
        | 0 -> List.nth boundary_lengths (Dphls_util.Rng.int rng (List.length boundary_lengths))
        | _ -> 1 + Dphls_util.Rng.int rng 150
      in
      let lq = pick_len () and lr = pick_len () in
      let query = random_ints rng ~len:lq ~alpha:4
      and reference = random_ints rng ~len:lr ~alpha:4 in
      let w = Workload.of_bases ~query ~reference in
      let banding =
        match Dphls_util.Rng.int rng 3 with
        | 0 -> None
        (* narrower than one word, including widths the lengths outrun *)
        | _ -> Some (Banding.fixed (1 + Dphls_util.Rng.int rng 20))
      in
      let k = { k19 with Kernel.banding } in
      let bitpar, _ = Backends.Bitpar.run cfg16 k p w in
      let golden = Dphls_reference.Ref_engine.run k p w in
      bitpar.Result.score = golden.Result.score)

(* ---- registry ports are the engines they wrap, bit for bit ---- *)

let small_workload (e : Dphls_kernels.Catalog.entry) ~len =
  let rng = Dphls_util.Rng.create (17 + Registry.id e.packed) in
  e.Dphls_kernels.Catalog.gen rng ~len

let test_registry_port_identity () =
  List.iter
    (fun id ->
      let e = Dphls_kernels.Catalog.find id in
      let (Registry.Packed (k, p)) = e.packed in
      let w = small_workload e ~len:40 in
      let direct_sys, direct_stats =
        Dphls_systolic.Engine.run (Dphls_systolic.Config.create ~n_pe:16) k p w
      in
      let reg_sys, reg_stats = Backends.Systolic.run cfg16 k p w in
      Alcotest.(check bool)
        (Printf.sprintf "#%d systolic result identical" id)
        true
        (Result.equal_alignment direct_sys reg_sys);
      Alcotest.(check bool)
        (Printf.sprintf "#%d systolic stats identical" id)
        true
        (reg_stats = Some direct_stats);
      let direct_ref = Dphls_reference.Ref_engine.run k p w in
      let reg_ref, no_stats = Backends.Reference.run cfg16 k p w in
      Alcotest.(check bool)
        (Printf.sprintf "#%d reference result identical" id)
        true
        (Result.equal_alignment direct_ref reg_ref);
      Alcotest.(check bool)
        (Printf.sprintf "#%d reference has no device stats" id)
        true (no_stats = None);
      (* golden_chunked replays the cosim band_pe chunking *)
      let chunked = Dphls_reference.Ref_engine.run ~band_pe:16 k p w in
      let reg_chunked, _ =
        Backends.Reference.run
          (Engine_intf.config ~golden_chunked:true ~n_pe:16 ())
          k p w
      in
      Alcotest.(check bool)
        (Printf.sprintf "#%d golden_chunked == band_pe" id)
        true
        (Result.equal_alignment chunked reg_chunked))
    [ 1; 2; 3; 7; 12; 15; 16; 19 ]

(* ---- auto dispatch: whole catalog, exactly one fast-path hit ---- *)

let test_auto_dispatch_catalog () =
  let metrics = Dphls_obs.Metrics.create () in
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let (Registry.Packed (k, p)) = e.packed in
      let w = small_workload e ~len:40 in
      let qry_len, ref_len = Workload.sizes w in
      let chosen = Engines.select ~metrics ~qry_len ~ref_len k p in
      let (module E : Engine_intf.S) = chosen in
      (* the routing never changes results: whichever engine auto picks
         scores exactly like the golden engine *)
      let r, _ = E.run cfg16 k p w in
      let golden = Dphls_reference.Ref_engine.run ~band_pe:16 k p w in
      Alcotest.(check int)
        (Printf.sprintf "#%d auto score == golden" (Registry.id e.packed))
        golden.Result.score r.Result.score;
      if Registry.id e.packed = 19 then
        Alcotest.(check string) "#19 routes to bitpar" "bitpar" E.name
      else
        Alcotest.(check string)
          (Printf.sprintf "#%d falls back to systolic" (Registry.id e.packed))
          "systolic" E.name)
    Dphls_kernels.Catalog.all;
  let total = List.length Dphls_kernels.Catalog.all in
  Alcotest.(check int) "exactly one fast-path hit across the catalog" 1
    (Dphls_obs.Metrics.get metrics Dphls_obs.Counter.Engine_fastpath_hits);
  Alcotest.(check int) "every other kernel counted as a fallback" (total - 1)
    (Dphls_obs.Metrics.get metrics Dphls_obs.Counter.Engine_fastpath_fallbacks)

(* ---- registry lookups and refusal paths ---- *)

let test_registry_lookup () =
  Alcotest.(check (list string)) "registry names"
    [ "systolic"; "reference"; "bitpar" ]
    Engines.names;
  Alcotest.(check bool) "find systolic" true
    (match Engines.find "systolic" with
    | Some e -> e == Engines.systolic
    | None -> false);
  Alcotest.(check bool) "of_string auto" true
    (match Engines.of_string "auto" with
    | Ok Engines.Auto -> true
    | _ -> false);
  (match Engines.of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error msg ->
    Alcotest.(check string) "error lists the valid values"
      "unknown engine \"bogus\" (valid: auto | systolic | reference | bitpar)"
      msg);
  Alcotest.(check bool) "bitpar caps: no traceback, no capture" true
    (let c = Engines.caps Engines.bitpar in
     (not c.Engine_intf.traceback) && (not c.Engine_intf.capture)
     && (not c.Engine_intf.adaptive_band)
     && not c.Engine_intf.cycle_model);
  Alcotest.(check bool) "systolic caps: full" true
    (let c = Engines.caps Engines.systolic in
     c.Engine_intf.traceback && c.Engine_intf.capture && c.Engine_intf.cycle_model)

let test_unsupported_paths () =
  let e = Dphls_kernels.Catalog.find 1 in
  let (Registry.Packed (k, p)) = e.packed in
  let w = small_workload e ~len:16 in
  (* a traceback kernel cannot route to the bit-parallel engine *)
  (match Backends.Bitpar.run cfg16 k p w with
  | exception Engine_intf.Unsupported msg ->
    Alcotest.(check bool) "names the disqualifying property" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "bitpar accepted a traceback kernel");
  (* the golden engine has no capture stream *)
  let trace = Dphls_systolic.Trace.create_capture () in
  (match Backends.Reference.run ~trace cfg16 k p w with
  | exception Engine_intf.Unsupported _ -> ()
  | _ -> Alcotest.fail "reference accepted a capture hook");
  (* adaptive bands stay on the array engines *)
  let e16 = Dphls_kernels.Catalog.find 16 in
  let (Registry.Packed (k16, p16)) = e16.packed in
  Alcotest.(check bool) "adaptive band refused by supports" true
    (match Backends.Bitpar.supports ~qry_len:16 ~ref_len:16 k16 p16 with
    | Error _ -> true
    | Ok _ -> false)

(* ---- the align API surface: Bitpar and Auto engines ---- *)

let test_align_api_engines () =
  (* Auto on a traceback kernel falls back and is bit-identical to the
     default golden run *)
  let g = Dphls.Align.global ~query:"ACGTACGT" ~reference:"ACGTTCGT" () in
  let a =
    Dphls.Align.global ~engine:(Dphls.Align.Auto 16) ~query:"ACGTACGT"
      ~reference:"ACGTTCGT" ()
  in
  Alcotest.(check int) "auto score == golden score" g.Dphls.Align.score
    a.Dphls.Align.score;
  Alcotest.(check string) "auto cigar == golden cigar" g.Dphls.Align.cigar
    a.Dphls.Align.cigar;
  (* Bitpar on a traceback kernel is a clean refusal *)
  match
    Dphls.Align.global ~engine:Dphls.Align.Bitpar ~query:"ACGT"
      ~reference:"ACGT" ()
  with
  | exception Engine_intf.Unsupported _ -> ()
  | _ -> Alcotest.fail "Align.Bitpar accepted a traceback kernel"

(* ---- CLI: --engine on align, negative path first ---- *)

let dphls_exe = "../bin/dphls.exe"

let run_cli args =
  let out = Filename.temp_file "dphls_cli" ".txt" in
  let code =
    Sys.command (Filename.quote_command dphls_exe ~stdout:out ~stderr:out args)
  in
  let ic = open_in out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_cli_engine_bogus () =
  let code, out =
    run_cli [ "align"; "-k"; "1"; "-q"; "ACGT"; "-r"; "ACGT"; "--engine"; "bogus" ]
  in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "lists the valid engine names" true
    (contains out "auto | systolic | reference | bitpar")

let test_cli_engine_bitpar () =
  let code, out =
    run_cli
      [ "align"; "-k"; "19"; "-q"; "ACGTACGTA"; "-r"; "ACGTTCGT"; "--engine"; "bitpar" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "names the engine" true (contains out "engine      : bitpar");
  Alcotest.(check bool) "score certified against golden" true
    (contains out "golden check: score match")

let test_cli_engine_auto_fallback () =
  let code, out =
    run_cli
      [ "align"; "-k"; "1"; "-q"; "ACGTACGT"; "-r"; "ACGTTCGT"; "--engine"; "auto" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports the fallback decision" true
    (contains out "engine      : systolic (auto)");
  Alcotest.(check bool) "still golden-checked" true
    (contains out "golden check: match")

let test_cli_engine_bitpar_refusal () =
  let code, out =
    run_cli [ "align"; "-k"; "1"; "-q"; "ACGT"; "-r"; "ACGT"; "--engine"; "bitpar" ]
  in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "explains the refusal" true
    (contains out "not bit-parallel eligible")

let suite =
  [
    Alcotest.test_case "myers word-boundary lengths" `Quick test_myers_boundaries;
    qtest prop_myers_unbanded;
    qtest prop_myers_banded;
    qtest prop_doubled_mapping;
    qtest prop_bitpar_backend_vs_golden;
    Alcotest.test_case "registry ports are bit-identical" `Quick
      test_registry_port_identity;
    Alcotest.test_case "auto dispatch: catalog, one fast-path hit" `Quick
      test_auto_dispatch_catalog;
    Alcotest.test_case "registry lookup and caps" `Quick test_registry_lookup;
    Alcotest.test_case "unsupported requests refused" `Quick
      test_unsupported_paths;
    Alcotest.test_case "align API: Bitpar and Auto" `Quick test_align_api_engines;
    Alcotest.test_case "cli: --engine bogus exits 2" `Quick test_cli_engine_bogus;
    Alcotest.test_case "cli: --engine bitpar on #19" `Quick test_cli_engine_bitpar;
    Alcotest.test_case "cli: --engine auto falls back" `Quick
      test_cli_engine_auto_fallback;
    Alcotest.test_case "cli: --engine bitpar refusal" `Quick
      test_cli_engine_bitpar_refusal;
  ]
