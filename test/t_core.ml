(* Tests for the front-end core: banding, best-cell tracking, the
   traceback walker, rescoring and the kernel registry. *)
open Dphls_core
module Score = Dphls_util.Score

let qtest = QCheck_alcotest.to_alcotest

let test_banding () =
  let b = Some (Banding.fixed 2) in
  Alcotest.(check bool) "on diagonal" true (Banding.in_band b ~row:5 ~col:5);
  Alcotest.(check bool) "edge in" true (Banding.in_band b ~row:5 ~col:7);
  Alcotest.(check bool) "outside" false (Banding.in_band b ~row:5 ~col:8);
  Alcotest.(check bool) "virtual border follows rule" true
    (Banding.in_band b ~row:(-1) ~col:1);
  Alcotest.(check bool) "unbanded" true (Banding.in_band None ~row:0 ~col:999);
  Alcotest.(check int) "cells 3x3 band1"
    (3 * 3 - 2)
    (Banding.cells_in_band (Some (Banding.fixed 1)) ~qry_len:3 ~ref_len:3);
  Alcotest.check_raises "width 0 invalid"
    (Invalid_argument "Banding.fixed: width must be >= 1") (fun () ->
      ignore (Banding.fixed 0))

let test_banding_adaptive () =
  let a = Banding.adaptive ~threshold:7 3 in
  Alcotest.(check int) "width accessor" 3 (Banding.width a);
  Alcotest.(check int) "fixed width accessor" 5 (Banding.width (Banding.fixed 5));
  (match Banding.adaptive 4 with
  | Banding.Adaptive { width; threshold } ->
    Alcotest.(check int) "default width kept" 4 width;
    Alcotest.(check int) "default threshold" Banding.default_threshold threshold
  | Banding.Fixed _ -> Alcotest.fail "adaptive built a Fixed band");
  Alcotest.check_raises "adaptive width 0 invalid"
    (Invalid_argument "Banding.adaptive: width must be >= 1") (fun () ->
      ignore (Banding.adaptive 0));
  Alcotest.check_raises "negative threshold invalid"
    (Invalid_argument "Banding.adaptive: threshold must be >= 0") (fun () ->
      ignore (Banding.adaptive ~threshold:(-1) 4));
  (* static membership is undefined for adaptive bands: the window is a
     run-time quantity, so the predicate must refuse, not guess *)
  Alcotest.(check bool) "in_band refuses adaptive" true
    (try
       ignore (Banding.in_band (Some a) ~row:0 ~col:0);
       false
     with Invalid_argument _ -> true);
  (* the adaptive envelope equals the fixed band of the same width *)
  Alcotest.(check int) "envelope = fixed cells"
    (Banding.cells_in_band (Some (Banding.fixed 3)) ~qry_len:9 ~ref_len:7)
    (Banding.cells_in_band (Some a) ~qry_len:9 ~ref_len:7)

let prop_cells_in_band_matches_loop =
  QCheck.Test.make ~name:"cells_in_band equals nested-loop oracle" ~count:300
    QCheck.(triple (int_range 1 40) (int_range 1 40) (int_range 1 50))
    (fun (q, r, width) ->
      let counted = ref 0 in
      for row = 0 to q - 1 do
        for col = 0 to r - 1 do
          if abs (row - col) <= width then incr counted
        done
      done;
      Banding.cells_in_band (Some (Banding.fixed width)) ~qry_len:q ~ref_len:r
      = !counted
      && Banding.cells_in_band None ~qry_len:q ~ref_len:r = q * r)

let test_best_cell_tie_break () =
  let t = Traceback.Best_cell.create Score.Maximize in
  Traceback.Best_cell.observe t { Types.row = 3; col = 1 } 10;
  Traceback.Best_cell.observe t { Types.row = 1; col = 5 } 10;
  Traceback.Best_cell.observe t { Types.row = 1; col = 2 } 10;
  (match Traceback.Best_cell.get t with
  | Some (c, s) ->
    Alcotest.(check int) "score" 10 s;
    Alcotest.(check bool) "lowest (row,col) wins ties" true
      (c.Types.row = 1 && c.Types.col = 2)
  | None -> Alcotest.fail "no best cell");
  Traceback.Best_cell.observe t { Types.row = 9; col = 9 } 11;
  match Traceback.Best_cell.get t with
  | Some (c, s) ->
    Alcotest.(check int) "better score replaces" 11 s;
    Alcotest.(check int) "row" 9 c.Types.row
  | None -> Alcotest.fail "no best cell"

let test_best_cell_merge_order_independent () =
  let mk obs =
    let t = Traceback.Best_cell.create Score.Maximize in
    List.iter (fun (r, c, s) -> Traceback.Best_cell.observe t { Types.row = r; col = c } s) obs;
    t
  in
  let a = mk [ (0, 3, 5); (2, 2, 7) ] and b = mk [ (1, 1, 7) ] in
  let m1 = Traceback.Best_cell.merge a b and m2 = Traceback.Best_cell.merge b a in
  Alcotest.(check bool) "merge commutes" true
    (Traceback.Best_cell.get m1 = Traceback.Best_cell.get m2);
  match Traceback.Best_cell.get m1 with
  | Some (c, 7) -> Alcotest.(check bool) "tie to (1,1)" true (c.Types.row = 1 && c.Types.col = 1)
  | _ -> Alcotest.fail "unexpected merge result"

let test_best_cell_minimize () =
  let t = Traceback.Best_cell.create Score.Minimize in
  Traceback.Best_cell.observe t { Types.row = 0; col = 0 } 5;
  Traceback.Best_cell.observe t { Types.row = 1; col = 1 } 2;
  match Traceback.Best_cell.get t with
  | Some (_, s) -> Alcotest.(check int) "min kept" 2 s
  | None -> Alcotest.fail "no best cell"

(* A toy FSM that always walks diagonally. *)
let diag_fsm =
  {
    Traceback.n_states = 1;
    start_state = 0;
    transition = (fun _ ~ptr:_ -> (0, Traceback.Diag));
  }

let test_walker_global_completion () =
  (* from (1,3), two Diags reach (-1,1): At_origin must complete with
     2 insertions for the remaining reference prefix *)
  let outcome =
    Walker.walk ~fsm:diag_fsm ~stop:Traceback.At_origin
      ~ptr_at:(fun ~row:_ ~col:_ -> 0)
      ~start:{ Types.row = 1; col = 3 } ~qry_len:2 ~ref_len:4 ()
  in
  Alcotest.(check int) "path length" 4 (List.length outcome.Walker.path);
  Alcotest.(check bool) "prefix insertions" true
    (match outcome.Walker.path with
    | [ Traceback.Ins; Traceback.Ins; Traceback.Mmi; Traceback.Mmi ] -> true
    | _ -> false)

let test_walker_semi_global_stops_at_top () =
  let outcome =
    Walker.walk ~fsm:diag_fsm ~stop:Traceback.At_top_row
      ~ptr_at:(fun ~row:_ ~col:_ -> 0)
      ~start:{ Types.row = 1; col = 3 } ~qry_len:2 ~ref_len:4 ()
  in
  (* no completion: reference prefix is clipped *)
  Alcotest.(check int) "only consuming moves" 2 (List.length outcome.Walker.path)

let test_walker_stop_move () =
  let fsm =
    {
      Traceback.n_states = 1;
      start_state = 0;
      transition =
        (fun _ ~ptr -> if ptr = 3 then (0, Traceback.Stop) else (0, Traceback.Diag));
    }
  in
  let outcome =
    Walker.walk ~fsm ~stop:Traceback.On_stop_move
      ~ptr_at:(fun ~row ~col -> if row = 1 && col = 1 then 3 else 0)
      ~start:{ Types.row = 3; col = 3 } ~qry_len:4 ~ref_len:4 ()
  in
  Alcotest.(check int) "stopped after 2 diags" 2 (List.length outcome.Walker.path);
  Alcotest.(check bool) "end at stop cell" true
    (outcome.Walker.end_cell = { Types.row = 1; col = 1 })

let test_walker_stay_loop_detected () =
  let fsm =
    {
      Traceback.n_states = 1;
      start_state = 0;
      transition = (fun _ ~ptr:_ -> (0, Traceback.Stay));
    }
  in
  Alcotest.(check bool) "raises on stay loop" true
    (try
       ignore
         (Walker.walk ~fsm ~stop:Traceback.At_origin
            ~ptr_at:(fun ~row:_ ~col:_ -> 0)
            ~start:{ Types.row = 3; col = 3 } ~qry_len:4 ~ref_len:4 ());
       false
     with Failure _ -> true)

let test_rescore_linear () =
  let query = Types.seq_of_bases [| 0; 1; 2 |] in
  let reference = Types.seq_of_bases [| 0; 1; 3 |] in
  let sub q r = if Types.equal_ch q r then 2 else -1 in
  let score =
    Rescore.linear ~sub ~gap:(-2) ~query ~reference ~start_row:0 ~start_col:0
      [ Traceback.Mmi; Traceback.Mmi; Traceback.Mmi ]
  in
  Alcotest.(check int) "2+2-1" 3 score

let test_rescore_affine_gap_runs () =
  let query = Types.seq_of_bases [| 0; 0; 0 |] in
  let reference = Types.seq_of_bases [| 0; 0; 0; 0; 0 |] in
  let sub _ _ = 1 in
  (* M I I M M : one insertion run of length 2 *)
  let score =
    Rescore.affine ~sub ~gap_open:(-5) ~gap_extend:(-1) ~query ~reference
      ~start_row:0 ~start_col:0
      [ Traceback.Mmi; Traceback.Ins; Traceback.Ins; Traceback.Mmi; Traceback.Mmi ]
  in
  Alcotest.(check int) "3 matches - (5+2)" (-4) score;
  (* two separate runs cost two opens *)
  let score2 =
    Rescore.affine ~sub ~gap_open:(-5) ~gap_extend:(-1) ~query ~reference
      ~start_row:0 ~start_col:0
      [ Traceback.Mmi; Traceback.Ins; Traceback.Mmi; Traceback.Ins; Traceback.Mmi ]
  in
  Alcotest.(check int) "3 matches - 2*(5+1)" (-9) score2

let test_rescore_two_piece_picks_best () =
  let query = Types.seq_of_bases [| 0 |] in
  let reference = Types.seq_of_bases (Array.make 11 0) in
  let sub _ _ = 0 in
  let path = Traceback.Mmi :: List.init 10 (fun _ -> Traceback.Ins) in
  let score =
    Rescore.two_piece ~sub ~open1:(-4) ~extend1:(-2) ~open2:(-24) ~extend2:(-1)
      ~query ~reference ~start_row:0 ~start_col:0 path
  in
  (* gap of 10: piece1 = -24, piece2 = -34 -> -24 *)
  Alcotest.(check int) "best piece" (-24) score

let test_rescore_overrun () =
  let query = Types.seq_of_bases [| 0 |] in
  let reference = Types.seq_of_bases [| 0 |] in
  Alcotest.(check bool) "overrun raises" true
    (try
       ignore
         (Rescore.linear
            ~sub:(fun _ _ -> 0)
            ~gap:(-1) ~query ~reference ~start_row:0 ~start_col:0
            [ Traceback.Mmi; Traceback.Mmi ]);
       false
     with Invalid_argument _ -> true)

let test_result_cigar () =
  let r =
    {
      Result.score = 5;
      start_cell = None;
      end_cell = None;
      path = [ Traceback.Mmi; Traceback.Mmi; Traceback.Ins; Traceback.Mmi; Traceback.Del ];
      cells_computed = 0;
    }
  in
  Alcotest.(check string) "cigar" "2M1I1M1D" (Result.cigar r);
  Alcotest.(check bool) "consumes" true (Result.path_consumes r = (4, 4))

let test_registry_all_valid () =
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) -> Registry.validate e.packed)
    Dphls_kernels.Catalog.all;
  Alcotest.(check int) "19 kernels" 19 (List.length Dphls_kernels.Catalog.all);
  Alcotest.(check (list int)) "ids 1..19" (List.init 19 (fun i -> i + 1))
    Dphls_kernels.Catalog.ids

let test_registry_lookup () =
  let e = Dphls_kernels.Catalog.find_by_name "dtw" in
  Alcotest.(check int) "dtw is #9" 9 (Registry.id e.packed);
  Alcotest.(check bool) "find raises" true
    (try
       ignore (Dphls_kernels.Catalog.find 99);
       false
     with Not_found -> true)

let test_kernel_validation_guards () =
  let k = Dphls_kernels.K01_global_linear.kernel in
  let bad = { k with Kernel.n_layers = 0 } in
  Alcotest.(check bool) "n_layers 0 invalid" true
    (try
       Kernel.validate bad Dphls_kernels.K01_global_linear.default;
       false
     with Invalid_argument _ -> true);
  let bad2 = { k with Kernel.tb_bits = 0 } in
  Alcotest.(check bool) "tb enabled but 0 bits invalid" true
    (try
       Kernel.validate bad2 Dphls_kernels.K01_global_linear.default;
       false
     with Invalid_argument _ -> true)

let prop_score_site_matches_exhaustive =
  QCheck.Test.make ~name:"score_site find equals exhaustive scan" ~count:200
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (q, r) ->
      let rng = Dphls_util.Rng.create (q * 100 + r) in
      let scores =
        Array.init q (fun _ -> Array.init r (fun _ -> Dphls_util.Rng.int rng 20))
      in
      let score_at ~row ~col = scores.(row).(col) in
      let cell, best =
        Score_site.find ~objective:Score.Maximize ~rule:Traceback.Global_best
          ~in_band:(fun ~row:_ ~col:_ -> true)
          ~score_at ~qry_len:q ~ref_len:r
      in
      let manual_best = ref min_int in
      Array.iter (Array.iter (fun v -> if v > !manual_best then manual_best := v)) scores;
      best = !manual_best && scores.(cell.Types.row).(cell.Types.col) = best)

let suite =
  [
    Alcotest.test_case "banding" `Quick test_banding;
    Alcotest.test_case "banding adaptive" `Quick test_banding_adaptive;
    qtest prop_cells_in_band_matches_loop;
    Alcotest.test_case "best cell tie break" `Quick test_best_cell_tie_break;
    Alcotest.test_case "best cell merge" `Quick test_best_cell_merge_order_independent;
    Alcotest.test_case "best cell minimize" `Quick test_best_cell_minimize;
    Alcotest.test_case "walker global completion" `Quick test_walker_global_completion;
    Alcotest.test_case "walker semi-global stop" `Quick test_walker_semi_global_stops_at_top;
    Alcotest.test_case "walker stop move" `Quick test_walker_stop_move;
    Alcotest.test_case "walker stay loop" `Quick test_walker_stay_loop_detected;
    Alcotest.test_case "rescore linear" `Quick test_rescore_linear;
    Alcotest.test_case "rescore affine runs" `Quick test_rescore_affine_gap_runs;
    Alcotest.test_case "rescore two-piece" `Quick test_rescore_two_piece_picks_best;
    Alcotest.test_case "rescore overrun" `Quick test_rescore_overrun;
    Alcotest.test_case "result cigar" `Quick test_result_cigar;
    Alcotest.test_case "registry valid" `Quick test_registry_all_valid;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "kernel validation" `Quick test_kernel_validation_guards;
    qtest prop_score_site_matches_exhaustive;
  ]
