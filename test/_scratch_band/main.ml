let scalar_banded ~query ~reference ~width =
  let m = Array.length query and n = Array.length reference in
  if abs (m - n) > width then None
  else begin
    let inf = max_int / 4 in
    let in_band i j = abs (i - j) <= width in
    let d = Array.make_matrix (m + 1) (n + 1) inf in
    d.(0).(0) <- 0;
    for i = 1 to m do d.(0 + i).(0) <- i done;
    for j = 1 to n do d.(0).(j) <- j done;
    for i = 1 to m do
      for j = 1 to n do
        if in_band (i - 1) (j - 1) then begin
          let sub = d.(i-1).(j-1) + (if query.(i-1) = reference.(j-1) then 0 else 1) in
          let del = d.(i-1).(j) + 1 in
          let ins = d.(i).(j-1) + 1 in
          d.(i).(j) <- min sub (min del ins)
        end
      done
    done;
    Some d.(m).(n)
  end

let () =
  let rng = Random.State.make [| 42 |] in
  let fails = ref 0 and runs = ref 0 in
  for _ = 1 to 4000 do
    let width = [| 31; 32; 61; 62; 63; 64; 65; 93; 100; 124; 125; 126 |].(Random.State.int rng 12) in
    let m = 1 + Random.State.int rng 300 in
    let dl = Random.State.int rng (2 * width + 6) - (width + 3) in
    let n = max 1 (m + dl) in
    let query = Array.init m (fun _ -> Random.State.int rng 4) in
    let reference = Array.init n (fun _ -> Random.State.int rng 4) in
    let expect = scalar_banded ~query ~reference ~width in
    let got = Dphls_bitpar.Myers.distance_banded ~query ~reference ~width in
    incr runs;
    if expect <> got then begin
      incr fails;
      if !fails <= 5 then
        Printf.printf "FAIL m=%d n=%d width=%d expect=%s got=%s\n" m n width
          (match expect with None -> "None" | Some d -> string_of_int d)
          (match got with None -> "None" | Some d -> string_of_int d)
    end
  done;
  Printf.printf "%d runs, %d fails\n" !runs !fails
