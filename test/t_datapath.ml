(* Symbolic datapath tests: every kernel's DSL description evaluates
   bit-identically to its hand-written PE closure (the reproduction's
   C-sim vs RTL co-sim check), validates structurally, and its operator
   counts agree with the declared resource traits to within 2x. *)
open Dphls_core
module Datapath = Dphls_core.Datapath

let qtest = QCheck_alcotest.to_alcotest

let substitute_pe packed dsl_pe =
  let (Registry.Packed (k, p)) = packed in
  (* pe_flat must go too, or the engines would keep the compiled datapath
     and never run the substituted closure *)
  Registry.Packed ({ k with Kernel.pe = (fun _ -> dsl_pe); pe_flat = None }, p)

let equivalence_prop id =
  QCheck.Test.make
    ~name:(Printf.sprintf "kernel #%d datapath == closure" id)
    ~count:25
    QCheck.(int_range 4 48)
    (fun len ->
      let e = Dphls_kernels.Catalog.find id in
      let cell, bindings = Dphls_kernels.Datapaths.cell_for id in
      let dsl_pe = Datapath.eval cell bindings in
      let rng = Dphls_util.Rng.create ((id * 71) + len) in
      let w = e.Dphls_kernels.Catalog.gen rng ~len in
      let (Registry.Packed (k, p)) = e.packed in
      let closure_result = Dphls_reference.Ref_engine.run k p w in
      let (Registry.Packed (k', p')) = substitute_pe e.packed dsl_pe in
      let dsl_result = Dphls_reference.Ref_engine.run k' p' w in
      Result.equal_alignment closure_result dsl_result)

let equivalence_tests =
  List.map (fun id -> qtest (equivalence_prop id)) Dphls_kernels.Catalog.ids

let test_all_validate () =
  List.iter
    (fun id ->
      let cell, _ = Dphls_kernels.Datapaths.cell_for id in
      let e = Dphls_kernels.Catalog.find id in
      Datapath.validate cell ~n_layers:(Registry.n_layers e.packed))
    Dphls_kernels.Catalog.ids

let test_tb_widths_match_kernels () =
  List.iter
    (fun id ->
      let cell, _ = Dphls_kernels.Datapaths.cell_for id in
      let e = Dphls_kernels.Catalog.find id in
      let dsl_bits =
        List.fold_left (fun acc f -> acc + f.Datapath.bits) 0 cell.Datapath.tb_fields
      in
      Alcotest.(check int)
        (Printf.sprintf "kernel #%d pointer width" id)
        (Registry.tb_bits e.packed) dsl_bits)
    Dphls_kernels.Catalog.ids

let test_counts_cross_check_traits () =
  List.iter
    (fun id ->
      let cell, _ = Dphls_kernels.Datapaths.cell_for id in
      let e = Dphls_kernels.Catalog.find id in
      let traits = Registry.traits e.packed in
      let c = Datapath.count cell in
      (* declared traits may fold constant additions into DSP cascades
         (e.g. #8) or spend DSPs on adder chains (#9), so the check is a
         consistency band, not equality *)
      Alcotest.(check bool)
        (Printf.sprintf "#%d adders %d ~ trait %d" id c.Datapath.adders
           traits.Traits.adds_per_pe)
        true
        (c.Datapath.adders >= 1
        && c.Datapath.adders <= (4 * traits.Traits.adds_per_pe) + 4
        && traits.Traits.adds_per_pe <= 4 * c.Datapath.adders);
      Alcotest.(check bool)
        (Printf.sprintf "#%d multipliers %d ~ trait %d" id c.Datapath.multipliers
           traits.Traits.muls_per_pe)
        true
        (c.Datapath.multipliers <= (2 * traits.Traits.muls_per_pe) + 2))
    Dphls_kernels.Catalog.ids

let test_eval_guards () =
  let bad = { Datapath.layers = [| Datapath.Param "nope" |]; tb_fields = [] } in
  let pe = Datapath.eval bad { Datapath.params = []; tables = [] } in
  let input =
    {
      Pe.up = [| 0 |]; diag = [| 0 |]; left = [| 0 |];
      qry = [| 0 |]; rf = [| 0 |]; row = 0; col = 0;
    }
  in
  Alcotest.(check bool) "unbound param raises" true
    (try ignore (pe input); false with Invalid_argument _ -> true)

let test_validate_guards () =
  let cur_in_gap_layer =
    { Datapath.layers = [| Datapath.Const 0; Datapath.Cur 2; Datapath.Const 0 |];
      tb_fields = [] }
  in
  Alcotest.(check bool) "Cur in gap layer rejected" true
    (try Datapath.validate cur_in_gap_layer ~n_layers:3; false
     with Invalid_argument _ -> true);
  let bad_layer = { Datapath.layers = [| Datapath.Up 5 |]; tb_fields = [] } in
  Alcotest.(check bool) "layer out of range rejected" true
    (try Datapath.validate bad_layer ~n_layers:1; false
     with Invalid_argument _ -> true)

let test_select_first_best_semantics () =
  (* mirror Kdefs.best_of on concrete candidate values *)
  let mk values =
    let cands = List.mapi (fun i v -> (Datapath.Const v, i)) values in
    let expr =
      Dphls_kernels.Datapaths.select_first_best ~objective:Dphls_util.Score.Maximize
        cands
    in
    let pe =
      Datapath.eval
        { Datapath.layers = [| Datapath.Const 0 |]; tb_fields = [ { bits = 4; value = expr } ] }
        { Datapath.params = []; tables = [] }
    in
    let input =
      { Pe.up = [| 0 |]; diag = [| 0 |]; left = [| 0 |]; qry = [| 0 |]; rf = [| 0 |];
        row = 0; col = 0 }
    in
    (pe input).Pe.tb
  in
  Alcotest.(check int) "first wins ties" 0 (mk [ 5; 5; 5 ]);
  Alcotest.(check int) "strictly better later wins" 2 (mk [ 1; 2; 3 ]);
  Alcotest.(check int) "middle winner" 1 (mk [ 1; 7; 7 ]);
  Alcotest.(check int) "first max wins" 0 (mk [ 9; 7; 9 ])

let suite =
  equivalence_tests
  @ [
      Alcotest.test_case "all datapaths validate" `Quick test_all_validate;
      Alcotest.test_case "pointer widths match" `Quick test_tb_widths_match_kernels;
      Alcotest.test_case "counts cross-check traits" `Quick test_counts_cross_check_traits;
      Alcotest.test_case "eval guards" `Quick test_eval_guards;
      Alcotest.test_case "validate guards" `Quick test_validate_guards;
      Alcotest.test_case "select_first_best semantics" `Quick
        test_select_first_best_semantics;
    ]
