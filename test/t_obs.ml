(* Observability-layer tests: counter exactness on hand-computable
   alignments (closed-form cell counts, traceback path length), Chrome
   trace round-trip through the parser, summary aggregation sanity,
   per-worker span disjointness on the pool, and the allocation
   regression extended to the instrumented engine entry points — the
   disabled sinks must keep the PR-4 compiled hot path allocation-free. *)
open Dphls_core
module Obs = Dphls_obs
module Metrics = Dphls_obs.Metrics
module Tracer = Dphls_obs.Tracer
module Counter = Dphls_obs.Counter

let qtest = QCheck_alcotest.to_alcotest

let workload_of rng len =
  Workload.of_bases
    ~query:(Dphls_alphabet.Dna.random rng len)
    ~reference:(Dphls_alphabet.Dna.random rng len)

(* ------------------------------------------------------------------ *)
(* Counter catalog basics.                                             *)

let test_counter_catalog () =
  Alcotest.(check int) "count matches all" Counter.count
    (Array.length Counter.all);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Counter.name c ^ " index") i (Counter.index c);
      Alcotest.(check bool) (Counter.name c ^ " of_name round-trip") true
        (Counter.of_name (Counter.name c) = Some c))
    Counter.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Counter.of_name "nope" = None);
  (* the engine-dispatch counters joined the catalog in the pluggable
     engine refactor and the serve admission counters in the service
     layer; pin the catalog size so an accidental removal (or a summary
     consumer missing them) fails loudly *)
  Alcotest.(check int) "catalog holds 18 counters" 18 Counter.count;
  Alcotest.(check bool) "dispatch counters present" true
    (Counter.of_name "engine_fastpath_hits" = Some Counter.Engine_fastpath_hits
    && Counter.of_name "engine_fastpath_fallbacks"
       = Some Counter.Engine_fastpath_fallbacks);
  Alcotest.(check bool) "serve counters present" true
    (Counter.of_name "serve_requests_admitted"
       = Some Counter.Serve_requests_admitted
    && Counter.of_name "serve_requests_rejected"
       = Some Counter.Serve_requests_rejected
    && Counter.of_name "serve_requests_expired"
       = Some Counter.Serve_requests_expired
    && Counter.of_name "serve_cache_hits" = Some Counter.Serve_cache_hits)

let test_metrics_sink () =
  let m = Metrics.create () in
  Metrics.add m Counter.Cells_evaluated 41;
  Metrics.incr m Counter.Cells_evaluated;
  Metrics.incr m Counter.Alignments;
  Alcotest.(check int) "add + incr accumulate" 42
    (Metrics.get m Counter.Cells_evaluated);
  let into = Metrics.create () in
  Metrics.add into Counter.Alignments 1;
  Metrics.merge_into ~into m;
  Alcotest.(check int) "merge sums" 2 (Metrics.get into Counter.Alignments);
  Alcotest.(check int) "merge copies" 42
    (Metrics.get into Counter.Cells_evaluated);
  Metrics.reset m;
  Alcotest.(check int) "reset zeroes" 0 (Metrics.get m Counter.Cells_evaluated);
  (* the shared disabled sink silently drops and always reads 0 *)
  Metrics.add Metrics.disabled Counter.Cells_evaluated 7;
  Alcotest.(check int) "disabled sink stays 0" 0
    (Metrics.get Metrics.disabled Counter.Cells_evaluated)

(* ------------------------------------------------------------------ *)
(* Exact counters on both engines.                                     *)

let run_systolic ?band_override ~metrics ~tracer k p w =
  let k = match band_override with None -> k | Some b -> { k with Kernel.banding = b } in
  let cfg = Dphls_systolic.Config.create ~n_pe:16 in
  Dphls_systolic.Engine.run ~metrics ~tracer cfg k p w

let run_golden ~metrics ~tracer k p w =
  Dphls_reference.Ref_engine.run ~band_pe:16 ~metrics ~tracer k p w

(* Unbanded: every cell of the qry x ref rectangle is evaluated, none
   skipped — on BOTH engines; exactly one alignment is recorded. *)
let prop_unbanded_cells_exact =
  QCheck.Test.make ~name:"unbanded cells_evaluated = qry*ref on both engines"
    ~count:15
    QCheck.(pair (int_range 4 80) (int_range 4 80))
    (fun (seed, len) ->
      let module K02 = Dphls_kernels.K02_global_affine in
      let rng = Dphls_util.Rng.create (1000 + seed) in
      let w = workload_of rng len in
      let check run =
        let m = Metrics.create () in
        ignore (run ~metrics:m ~tracer:Tracer.disabled K02.kernel K02.default w);
        Metrics.get m Counter.Cells_evaluated = len * len
        && Metrics.get m Counter.Cells_band_skipped = 0
        && Metrics.get m Counter.Alignments = 1
      in
      check (fun ~metrics ~tracer k p w ->
          fst (run_systolic ~metrics ~tracer k p w))
      && check run_golden)

(* Fixed band (kernel #11): the evaluated-cell count equals the
   closed-form [Banding.cells_in_band], and evaluated + skipped tiles
   the full rectangle — again on both engines. *)
let prop_fixed_band_cells_closed_form =
  QCheck.Test.make
    ~name:"fixed band cells_evaluated = Banding.cells_in_band (kernel #11)"
    ~count:15
    QCheck.(pair (int_range 8 120) (int_range 0 1000))
    (fun (len, seed) ->
      let e = Dphls_kernels.Catalog.find 11 in
      let (Registry.Packed (k, p)) = e.packed in
      let rng = Dphls_util.Rng.create (31 + seed) in
      let w = e.Dphls_kernels.Catalog.gen rng ~len in
      let qry_len = Array.length w.Workload.query in
      let ref_len = Array.length w.Workload.reference in
      let expected =
        Banding.cells_in_band k.Kernel.banding ~qry_len ~ref_len
      in
      let check run =
        let m = Metrics.create () in
        ignore (run ~metrics:m ~tracer:Tracer.disabled k p w);
        Metrics.get m Counter.Cells_evaluated = expected
        && Metrics.get m Counter.Cells_evaluated
           + Metrics.get m Counter.Cells_band_skipped
           = qry_len * ref_len
      in
      check (fun ~metrics ~tracer k p w ->
          fst (run_systolic ~metrics ~tracer k p w))
      && check run_golden)

(* Identical sequences under global linear gaps: the optimal path is
   the pure diagonal, the walker takes exactly one step per matched
   base, and the recorded path has one op per step. *)
let test_tb_steps_diagonal () =
  let module K01 = Dphls_kernels.K01_global_linear in
  let s = Dphls_alphabet.Dna.of_string "ACGTACGTACGTACGTACGT" in
  let w = Workload.of_bases ~query:s ~reference:s in
  List.iter
    (fun (label, run) ->
      let m = Metrics.create () in
      let r = run ~metrics:m ~tracer:Tracer.disabled K01.kernel K01.default w in
      Alcotest.(check int)
        (label ^ ": tb_steps = path length")
        (List.length r.Result.path)
        (Metrics.get m Counter.Tb_steps);
      Alcotest.(check int)
        (label ^ ": one step per base on the diagonal")
        (Array.length s)
        (Metrics.get m Counter.Tb_steps))
    [
      ( "systolic",
        fun ~metrics ~tracer k p w ->
          fst (run_systolic ~metrics ~tracer k p w) );
      ("golden", run_golden);
    ]

(* Systolic wavefront count: ceil(qry/n_pe) chunks, each sweeping
   ref_len + n_pe - 1 anti-diagonal steps. *)
let test_wavefronts_closed_form () =
  let module K02 = Dphls_kernels.K02_global_affine in
  let rng = Dphls_util.Rng.create 77 in
  let w = workload_of rng 100 in
  let n_pe = 16 in
  let m = Metrics.create () in
  let cfg = Dphls_systolic.Config.create ~n_pe in
  let _, st =
    Dphls_systolic.Engine.run ~metrics:m ~tracer:Tracer.disabled cfg K02.kernel
      K02.default w
  in
  Alcotest.(check int) "wavefronts = pe_slots / n_pe"
    (st.Dphls_systolic.Engine.pe_slots / n_pe)
    (Metrics.get m Counter.Wavefronts);
  (* each chunk of r rows sweeps ref_len + r - 1 anti-diagonal steps *)
  let full = 100 / n_pe and rem = 100 mod n_pe in
  let expected =
    (full * (100 + n_pe - 1)) + if rem > 0 then 100 + rem - 1 else 0
  in
  Alcotest.(check int) "wavefronts = sum of per-chunk sweeps" expected
    (Metrics.get m Counter.Wavefronts)

(* ------------------------------------------------------------------ *)
(* Tracing: spans, Chrome round-trip, summary aggregation.             *)

let test_engine_spans () =
  let module K02 = Dphls_kernels.K02_global_affine in
  let rng = Dphls_util.Rng.create 5 in
  let w = workload_of rng 48 in
  let tr = Tracer.create () in
  ignore (run_systolic ~metrics:Metrics.disabled ~tracer:tr K02.kernel K02.default w);
  let names = List.map (fun s -> s.Tracer.span_name) (Tracer.spans tr) in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("systolic records a " ^ n ^ " span") true
        (List.mem n names))
    [ "compute"; "reduction"; "traceback" ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Tracer.span_name ^ " well-ordered") true
        (s.Tracer.t0 <= s.Tracer.t1 && s.Tracer.t0 >= 0.))
    (Tracer.spans tr)

let test_chrome_round_trip () =
  let tr = Tracer.create () in
  Tracer.add_span tr ~cat:"engine" ~t0:0.001 ~t1:0.0035 "compute";
  Tracer.add_span tr ~cat:"pool" ~tid:3 ~t0:0.002 ~t1:0.004 "chunk";
  Tracer.add_span tr ~t0:0.004 ~t1:0.004 "empty\"name\\with specials";
  let json = Dphls_obs.Chrome.to_json ~process_name:"t_obs" tr in
  let parsed = Dphls_obs.Chrome.parse json in
  let direct = Dphls_obs.Chrome.events_of_tracer tr in
  Alcotest.(check int) "event count survives" (List.length direct)
    (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Dphls_obs.Chrome.name b.Dphls_obs.Chrome.name;
      Alcotest.(check string) "cat" a.Dphls_obs.Chrome.cat b.Dphls_obs.Chrome.cat;
      Alcotest.(check string) "ph" a.Dphls_obs.Chrome.ph b.Dphls_obs.Chrome.ph;
      Alcotest.(check int) "tid" a.Dphls_obs.Chrome.tid b.Dphls_obs.Chrome.tid;
      (* ts/dur are printed with .3f microsecond precision *)
      Alcotest.(check bool) "ts close" true
        (Float.abs (a.Dphls_obs.Chrome.ts -. b.Dphls_obs.Chrome.ts) < 0.01);
      Alcotest.(check bool) "dur close" true
        (Float.abs (a.Dphls_obs.Chrome.dur -. b.Dphls_obs.Chrome.dur) < 0.01))
    direct parsed;
  Alcotest.(check bool) "malformed json rejected" true
    (try ignore (Dphls_obs.Chrome.parse "{\"traceEvents\": [}"); false
     with Failure _ -> true);
  Alcotest.(check bool) "missing traceEvents rejected" true
    (try ignore (Dphls_obs.Chrome.parse "{}"); false
     with Failure _ -> true)

let test_summary_aggregates () =
  let m = Metrics.create () in
  Metrics.add m Counter.Cells_evaluated 640;
  let tr = Tracer.create () in
  for i = 1 to 10 do
    let d = float_of_int i *. 1e-4 in
    Tracer.add_span tr ~cat:"engine" ~t0:0.0 ~t1:d "compute"
  done;
  Tracer.add_span tr ~cat:"engine" ~t0:0.0 ~t1:1e-3 "traceback";
  let s = Dphls_obs.Summary.build ~metrics:m ~tracer:tr () in
  Alcotest.(check int) "whole counter catalog present" Counter.count
    (List.length s.Dphls_obs.Summary.counters);
  Alcotest.(check int) "two span groups" 2
    (List.length s.Dphls_obs.Summary.span_stats);
  let compute = List.hd s.Dphls_obs.Summary.span_stats in
  Alcotest.(check string) "first-appearance order" "compute"
    compute.Dphls_obs.Summary.span_name;
  Alcotest.(check int) "grouped count" 10 compute.Dphls_obs.Summary.count;
  List.iter
    (fun st ->
      let open Dphls_obs.Summary in
      Alcotest.(check bool) (st.span_name ^ ": p50 <= p99 <= max") true
        (st.p50_s <= st.p99_s && st.p99_s <= st.max_s +. 1e-12);
      Alcotest.(check bool) (st.span_name ^ ": mean within [0, max]") true
        (st.mean_s >= 0. && st.mean_s <= st.max_s +. 1e-12))
    s.Dphls_obs.Summary.span_stats;
  Alcotest.(check bool) "wall = last span end" true
    (Float.abs (s.Dphls_obs.Summary.wall_s -. 1e-3) < 1e-9);
  (* the JSON twin carries the same counter value *)
  let json = Dphls_obs.Summary.to_json s in
  let has needle =
    let rec scan i =
      i + String.length needle <= String.length json
      && (String.sub json i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "json carries cells_evaluated" true
    (has "\"cells_evaluated\":640")

(* ------------------------------------------------------------------ *)
(* Pool: counters on the calling thread, per-worker spans disjoint.    *)

let test_pool_counters_and_spans () =
  Dphls_host.Pool.with_pool ~workers:4 (fun pool ->
      let m = Metrics.create () in
      let tr = Tracer.create () in
      let n = 64 in
      let _, _ =
        Dphls_host.Pool.run ~chunk:4 ~metrics:m ~tracer:tr pool
          (fun i ->
            (* enough work for spans to have measurable extent *)
            let acc = ref 0 in
            for j = 0 to 20_000 do acc := !acc + ((i + j) mod 7) done;
            !acc)
          n
      in
      Alcotest.(check int) "pool_tasks = n" n
        (Metrics.get m Counter.Pool_tasks);
      Alcotest.(check int) "pool_steals = chunk count" (n / 4)
        (Metrics.get m Counter.Pool_steals);
      Alcotest.(check bool) "idle waits non-negative" true
        (Metrics.get m Counter.Pool_idle_waits >= 0);
      let spans = Tracer.spans tr in
      Alcotest.(check int) "one span per chunk" (n / 4) (List.length spans);
      (* group by worker row; within one worker, chunks execute
         sequentially, so spans must not overlap *)
      let by_tid = Hashtbl.create 8 in
      List.iter
        (fun s ->
          Alcotest.(check string) "pool category" "pool" s.Tracer.cat;
          Alcotest.(check bool) "tid is a worker index" true
            (s.Tracer.tid >= 0 && s.Tracer.tid < 4);
          Hashtbl.replace by_tid s.Tracer.tid
            (s :: (try Hashtbl.find by_tid s.Tracer.tid with Not_found -> [])))
        spans;
      Hashtbl.iter
        (fun tid ss ->
          let sorted =
            List.sort (fun a b -> compare a.Tracer.t0 b.Tracer.t0) ss
          in
          let rec disjoint = function
            | a :: (b :: _ as rest) ->
                Alcotest.(check bool)
                  (Printf.sprintf "worker %d spans disjoint" tid)
                  true
                  (a.Tracer.t1 <= b.Tracer.t0);
                disjoint rest
            | _ -> ()
          in
          disjoint sorted)
        by_tid)

(* ------------------------------------------------------------------ *)
(* Allocation regression: instrumentation must not cost the compiled
   hot path its O(1)-words property. Same workload shape as
   t_flatpath.ml's regression (K02, len 160, n_pe 16); here through the
   optional-sink entry points, with sinks disabled AND enabled. *)

let minor_words_of f =
  let before = Gc.minor_words () in
  let r = f () in
  ignore (Sys.opaque_identity r);
  int_of_float (Gc.minor_words () -. before)

let test_instrumented_allocation_regression () =
  let module K02 = Dphls_kernels.K02_global_affine in
  let len = 160 in
  let rng = Dphls_util.Rng.create 404 in
  let w = workload_of rng len in
  let cfg = Dphls_systolic.Config.create ~n_pe:16 in
  let run ~metrics ~tracer () =
    Dphls_systolic.Engine.run ~metrics ~tracer cfg K02.kernel K02.default w
  in
  ignore (run ~metrics:Metrics.disabled ~tracer:Tracer.disabled ()) (* warm-up *);
  let cells = len * len in
  let disabled_words =
    minor_words_of (run ~metrics:Metrics.disabled ~tracer:Tracer.disabled)
  in
  Alcotest.(check bool)
    (Printf.sprintf "disabled sinks stay allocation-free (%d words, %d cells)"
       disabled_words cells)
    true
    (disabled_words < cells);
  (* enabled counters are added once per run from refs the engine keeps
     anyway — still far under a word per cell *)
  let m = Metrics.create () in
  let enabled_words =
    minor_words_of (run ~metrics:m ~tracer:Tracer.disabled)
  in
  Alcotest.(check bool)
    (Printf.sprintf "enabled metrics stay allocation-free (%d words)" enabled_words)
    true
    (enabled_words < cells);
  Alcotest.(check int) "and the counters are still exact" cells
    (Metrics.get m Counter.Cells_evaluated)

let suite =
  [
    Alcotest.test_case "counter catalog" `Quick test_counter_catalog;
    Alcotest.test_case "metrics sink semantics" `Quick test_metrics_sink;
    qtest prop_unbanded_cells_exact;
    qtest prop_fixed_band_cells_closed_form;
    Alcotest.test_case "tb_steps on the pure diagonal" `Quick
      test_tb_steps_diagonal;
    Alcotest.test_case "wavefront counter closed form" `Quick
      test_wavefronts_closed_form;
    Alcotest.test_case "engine phase spans" `Quick test_engine_spans;
    Alcotest.test_case "chrome trace round-trip" `Quick test_chrome_round_trip;
    Alcotest.test_case "summary aggregation" `Quick test_summary_aggregates;
    Alcotest.test_case "pool counters + disjoint worker spans" `Quick
      test_pool_counters_and_spans;
    Alcotest.test_case "instrumented hot path stays allocation-free" `Quick
      test_instrumented_allocation_regression;
  ]
