(* Tests for the sequence-I/O substrate (FASTA/FASTQ/PAF) and the
   co-simulation API. *)
module Fasta = Dphls_io.Fasta
module Fastq = Dphls_io.Fastq
module Paf = Dphls_io.Paf

let qtest = QCheck_alcotest.to_alcotest

let test_fasta_parse () =
  let text = ">seq1 first record\nACGT\nACGT\n\n; a comment\n>seq2\nTTTT\n" in
  match Fasta.parse_string text with
  | [ a; b ] ->
    Alcotest.(check string) "id 1" "seq1" a.Fasta.id;
    Alcotest.(check string) "description" "first record" a.Fasta.description;
    Alcotest.(check string) "joined sequence" "ACGTACGT" a.Fasta.sequence;
    Alcotest.(check string) "id 2" "seq2" b.Fasta.id;
    Alcotest.(check string) "seq 2" "TTTT" b.Fasta.sequence
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records)

let test_fasta_roundtrip () =
  let records =
    [
      { Fasta.id = "a"; description = "desc"; sequence = String.make 130 'A' };
      { Fasta.id = "b"; description = ""; sequence = "ACGT" };
    ]
  in
  let parsed = Fasta.parse_string (Fasta.to_string records) in
  Alcotest.(check int) "count" 2 (List.length parsed);
  List.iter2
    (fun (orig : Fasta.record) (got : Fasta.record) ->
      Alcotest.(check string) "id" orig.id got.id;
      Alcotest.(check string) "sequence" orig.sequence got.sequence)
    records parsed

let test_fasta_file_roundtrip () =
  let path = Filename.temp_file "dphls" ".fa" in
  let records = [ { Fasta.id = "x"; description = ""; sequence = "ACGTACGTAC" } ] in
  Fasta.write_file path records;
  let back = Fasta.read_file path in
  Sys.remove path;
  Alcotest.(check int) "one record" 1 (List.length back);
  Alcotest.(check string) "sequence" "ACGTACGTAC" (List.hd back).Fasta.sequence

let test_fasta_errors () =
  Alcotest.(check bool) "sequence before header" true
    (try
       ignore (Fasta.parse_string "ACGT\n");
       false
     with Failure _ -> true)

let test_fasta_encoding () =
  let r = { Fasta.id = "x"; description = ""; sequence = "ACGT" } in
  Alcotest.(check bool) "dna encoding" true (Fasta.dna_of_record r = [| 0; 1; 2; 3 |])

let test_fastq_parse () =
  let text = "@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+r2\nAB\n" in
  match Fastq.parse_string text with
  | [ a; b ] ->
    Alcotest.(check string) "id" "r1" a.Fastq.id;
    Alcotest.(check string) "sequence" "ACGT" a.Fastq.sequence;
    Alcotest.(check (float 0.01)) "quality I = 40" 40.0 (Fastq.mean_quality a);
    Alcotest.(check string) "second" "r2" b.Fastq.id
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records)

let test_fastq_errors () =
  let bad = [ "ACGT\nACGT\n+\nIIII\n"; "@r\nACGT\n+\nIII\n"; "@r\nACGT\n+\n" ] in
  List.iter
    (fun text ->
      Alcotest.(check bool) "malformed rejected" true
        (try
           ignore (Fastq.parse_string text);
           false
         with Failure _ -> true))
    bad

let test_fastq_writer_roundtrip () =
  let records =
    [
      { Fastq.id = "r1"; sequence = "ACGT"; quality = "IIII" };
      { Fastq.id = "r2"; sequence = "TT"; quality = "!~" };
    ]
  in
  let parsed = Fastq.parse_string (Fastq.to_string records) in
  Alcotest.(check int) "count" 2 (List.length parsed);
  List.iter2
    (fun (a : Fastq.record) (b : Fastq.record) ->
      Alcotest.(check string) "id" a.Fastq.id b.Fastq.id;
      Alcotest.(check string) "sequence" a.Fastq.sequence b.Fastq.sequence;
      Alcotest.(check string) "quality" a.Fastq.quality b.Fastq.quality)
    records parsed;
  let path = Filename.temp_file "dphls" ".fq" in
  Fastq.write_file path records;
  let back = Fastq.read_file path in
  Sys.remove path;
  Alcotest.(check int) "file roundtrip count" 2 (List.length back)

let test_fastq_writer_rejects_skew () =
  Alcotest.(check bool) "quality length mismatch raises" true
    (try
       ignore
         (Fastq.to_string [ { Fastq.id = "r"; sequence = "ACGT"; quality = "II" } ]);
       false
     with Invalid_argument _ -> true)

(* Generators kept inside the parsers' round-trippable domain: ids
   without whitespace, DNA bases, Phred+33 printable quality chars. *)
let gen_id =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; 'r'; '0'; '7'; '_' ]) (int_range 1 12))

let gen_fastq_record =
  QCheck.Gen.(
    int_range 1 60 >>= fun n ->
    let base = oneofl [ 'A'; 'C'; 'G'; 'T' ] in
    let qual = map Char.chr (int_range 33 104) in
    triple gen_id (string_size ~gen:base (return n)) (string_size ~gen:qual (return n)))

let prop_fastq_roundtrip =
  QCheck.Test.make ~name:"fastq to_string/parse_string round-trip" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 8) gen_fastq_record))
    (fun records ->
      let records =
        List.map
          (fun (id, sequence, quality) -> { Fastq.id; sequence; quality })
          records
      in
      let parsed = Fastq.parse_string (Fastq.to_string records) in
      List.length parsed = List.length records
      && List.for_all2
           (fun (a : Fastq.record) (b : Fastq.record) ->
             a.Fastq.id = b.Fastq.id
             && a.Fastq.sequence = b.Fastq.sequence
             && a.Fastq.quality = b.Fastq.quality)
           records parsed)

let test_fastq_malformed_rejected () =
  let bad =
    [
      (* truncated record: header+sequence only *)
      "@r1\nACGT\n";
      (* truncated record: missing the quality line *)
      "@r1\nACGT\n+\n";
      (* quality line shorter than the sequence *)
      "@r1\nACGT\n+\nII\n";
      (* quality line longer than the sequence *)
      "@r1\nAC\n+\nIIII\n";
      (* missing '@' header *)
      "r1\nACGT\n+\nIIII\n";
      (* missing '+' separator *)
      "@r1\nACGT\nIIII\nIIII\n";
    ]
  in
  List.iter
    (fun text ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" text)
        true
        (try
           ignore (Fastq.parse_string text);
           false
         with Failure _ -> true))
    bad

let gen_paf_record =
  QCheck.Gen.(
    let pos = int_range 0 10_000 in
    gen_id >>= fun query_name ->
    gen_id >>= fun target_name ->
    pos >>= fun query_length ->
    pos >>= fun query_start ->
    pos >>= fun query_end ->
    pos >>= fun target_length ->
    pos >>= fun target_start ->
    pos >>= fun target_end ->
    pos >>= fun matches ->
    pos >>= fun alignment_length ->
    int_range 0 255 >>= fun mapq ->
    oneofl [ Paf.Forward; Paf.Reverse ] >>= fun strand ->
    list_size (int_range 0 3) (pair (return "cg") gen_id) >>= fun tags ->
    return
      {
        Paf.query_name;
        query_length;
        query_start;
        query_end;
        strand;
        target_name;
        target_length;
        target_start;
        target_end;
        matches;
        alignment_length;
        mapq;
        tags;
      })

let prop_paf_roundtrip =
  QCheck.Test.make ~name:"paf to_line/parse_line round-trip" ~count:100
    (QCheck.make gen_paf_record)
    (fun r -> Paf.parse_line (Paf.to_line r) = r)

let test_paf_malformed_rejected () =
  let bad =
    [
      (* non-numeric query length *)
      "q\tx\t0\t4\t+\tt\t10\t0\t4\t4\t4\t60";
      (* non-numeric mapq *)
      "q\t4\t0\t4\t+\tt\t10\t0\t4\t4\t4\tmq";
      (* bad strand *)
      "q\t4\t0\t4\t?\tt\t10\t0\t4\t4\t4\t60";
      (* not enough fields *)
      "q\t4\t0\t4\t+\tt\t10";
      (* malformed tag *)
      "q\t4\t0\t4\t+\tt\t10\t0\t4\t4\t4\t60\tnotatag";
    ]
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" line)
        true
        (try
           ignore (Paf.parse_line line);
           false
         with Failure _ -> true))
    bad

let test_fastq_to_fasta () =
  let r = { Fastq.id = "r"; sequence = "ACGT"; quality = "IIII" } in
  Alcotest.(check string) "conversion" "ACGT" (Fastq.to_fasta r).Fasta.sequence

let sample_paf =
  {
    Paf.query_name = "read1";
    query_length = 100;
    query_start = 0;
    query_end = 100;
    strand = Paf.Forward;
    target_name = "chr1";
    target_length = 1000;
    target_start = 50;
    target_end = 151;
    matches = 95;
    alignment_length = 101;
    mapq = 60;
    tags = [ ("cg", "50M1I50M") ];
  }

let test_paf_roundtrip () =
  let line = Paf.to_line sample_paf in
  let parsed = Paf.parse_line line in
  Alcotest.(check string) "query" sample_paf.Paf.query_name parsed.Paf.query_name;
  Alcotest.(check int) "target start" 50 parsed.Paf.target_start;
  Alcotest.(check int) "matches" 95 parsed.Paf.matches;
  Alcotest.(check (list (pair string string))) "tags" sample_paf.Paf.tags
    parsed.Paf.tags

let test_paf_of_alignment () =
  let open Dphls_core in
  let e = Dphls_kernels.Catalog.find 7 in
  let (Registry.Packed (k, p)) = e.packed in
  let rng = Dphls_util.Rng.create 55 in
  let w = e.Dphls_kernels.Catalog.gen rng ~len:80 in
  let result = Dphls_reference.Ref_engine.run k p w in
  match Alignment_view.first_consumed result with
  | None -> Alcotest.fail "expected a path"
  | Some (row0, col0) ->
    let stats =
      Alignment_view.stats ~query:w.Workload.query ~reference:w.Workload.reference
        ~start_row:row0 ~start_col:col0 result.Result.path
    in
    let r =
      Paf.of_alignment ~query_name:"q" ~query_length:(Array.length w.Workload.query)
        ~target_name:"t" ~target_length:(Array.length w.Workload.reference) ~result
        ~stats ~mapq:60
    in
    (* semi-global: whole query consumed *)
    Alcotest.(check int) "query start" 0 r.Paf.query_start;
    Alcotest.(check int) "query end" (Array.length w.Workload.query) r.Paf.query_end;
    Alcotest.(check bool) "target span within bounds" true
      (r.Paf.target_start >= 0
      && r.Paf.target_end <= Array.length w.Workload.reference);
    Alcotest.(check bool) "cigar tag" true (List.mem_assoc "cg" r.Paf.tags)

let test_cosim_passes () =
  let open Dphls_core in
  let e = Dphls_kernels.Catalog.find 2 in
  let (Registry.Packed (k, p)) = e.packed in
  let rng = Dphls_util.Rng.create 99 in
  let workloads = List.init 8 (fun _ -> e.Dphls_kernels.Catalog.gen rng ~len:48) in
  let cell, bindings = Dphls_kernels.Datapaths.cell_for 2 in
  let report =
    Dphls_cosim.Cosim.verify ~n_pe:8
      ~alt_pe:(Datapath.eval cell bindings)
      k p workloads
  in
  Alcotest.(check bool) "passed" true (Dphls_cosim.Cosim.passed report);
  Alcotest.(check int) "all agreed" 8 report.Dphls_cosim.Cosim.agreed;
  Alcotest.(check bool) "cycle stats collected" true
    (report.Dphls_cosim.Cosim.mean_cycles > 0.0)

let test_cosim_detects_bugs () =
  let open Dphls_core in
  let e = Dphls_kernels.Catalog.find 1 in
  let (Registry.Packed (k, p)) = e.packed in
  let rng = Dphls_util.Rng.create 100 in
  let workloads = List.init 4 (fun _ -> e.Dphls_kernels.Catalog.gen rng ~len:32) in
  (* an intentionally wrong alternate PE must be caught *)
  let broken (input : Pe.input) =
    { Pe.scores = Array.map (fun s -> s + 1) input.Pe.up; tb = 0 }
  in
  let report = Dphls_cosim.Cosim.verify ~n_pe:8 ~alt_pe:broken k p workloads in
  Alcotest.(check bool) "failure detected" false (Dphls_cosim.Cosim.passed report)

(* A PE that disagrees on every workload, to exercise the mismatch cap. *)
let broken_pe (input : Dphls_core.Pe.input) =
  let open Dphls_core in
  { Pe.scores = Array.map (fun s -> s + 1) input.Pe.up; tb = 0 }

let cosim_broken ~max_mismatches ~trials =
  let open Dphls_core in
  let e = Dphls_kernels.Catalog.find 1 in
  let (Registry.Packed (k, p)) = e.packed in
  let rng = Dphls_util.Rng.create 123 in
  let workloads =
    List.init trials (fun _ -> e.Dphls_kernels.Catalog.gen rng ~len:24)
  in
  Dphls_cosim.Cosim.verify ~n_pe:4 ~max_mismatches ~alt_pe:broken_pe k p
    workloads

let test_cosim_mismatch_cap_hit () =
  (* more mismatching workloads than the cap: list capped, truncated set *)
  let r = cosim_broken ~max_mismatches:3 ~trials:6 in
  Alcotest.(check int) "all disagreed" 0 r.Dphls_cosim.Cosim.agreed;
  Alcotest.(check int) "mismatch list capped" 3
    (List.length r.Dphls_cosim.Cosim.mismatches);
  Alcotest.(check bool) "truncated flagged" true r.Dphls_cosim.Cosim.truncated

let test_cosim_mismatch_cap_not_hit () =
  (* cap above the mismatch count: full list, not truncated *)
  let r = cosim_broken ~max_mismatches:10 ~trials:6 in
  Alcotest.(check int) "all mismatches listed" 6
    (List.length r.Dphls_cosim.Cosim.mismatches);
  Alcotest.(check bool) "not truncated" false r.Dphls_cosim.Cosim.truncated;
  (* a passing run is never truncated either *)
  let open Dphls_core in
  let e = Dphls_kernels.Catalog.find 1 in
  let (Registry.Packed (k, p)) = e.packed in
  let rng = Dphls_util.Rng.create 124 in
  let ok =
    Dphls_cosim.Cosim.verify ~n_pe:4 ~max_mismatches:1 k p
      (List.init 4 (fun _ -> e.Dphls_kernels.Catalog.gen rng ~len:24))
  in
  Alcotest.(check bool) "clean run passes" true (Dphls_cosim.Cosim.passed ok);
  Alcotest.(check bool) "clean run not truncated" false
    ok.Dphls_cosim.Cosim.truncated

let test_cosim_vectors_capture () =
  (* ~vectors mode writes one checkable golden vector per workload *)
  let open Dphls_core in
  let e = Dphls_kernels.Catalog.find 1 in
  let (Registry.Packed (k, p)) = e.packed in
  let rng = Dphls_util.Rng.create 125 in
  let workloads =
    List.init 2 (fun _ -> e.Dphls_kernels.Catalog.gen rng ~len:16)
  in
  let dir = Filename.temp_file "dphls_vecdir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let r = Dphls_cosim.Cosim.verify ~n_pe:4 ~vectors:dir k p workloads in
  Alcotest.(check bool) "cosim passed" true (Dphls_cosim.Cosim.passed r);
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dpv")
  in
  Alcotest.(check int) "one vector per workload" 2 (List.length files);
  List.iter
    (fun f ->
      match Dphls_vectors.Harness.check_file (Filename.concat dir f) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" f msg)
    files;
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "fasta parse" `Quick test_fasta_parse;
    Alcotest.test_case "fasta roundtrip" `Quick test_fasta_roundtrip;
    Alcotest.test_case "fasta file roundtrip" `Quick test_fasta_file_roundtrip;
    Alcotest.test_case "fasta errors" `Quick test_fasta_errors;
    Alcotest.test_case "fasta encoding" `Quick test_fasta_encoding;
    Alcotest.test_case "fastq parse" `Quick test_fastq_parse;
    Alcotest.test_case "fastq errors" `Quick test_fastq_errors;
    Alcotest.test_case "fastq writer roundtrip" `Quick test_fastq_writer_roundtrip;
    Alcotest.test_case "fastq writer rejects skew" `Quick test_fastq_writer_rejects_skew;
    qtest prop_fastq_roundtrip;
    Alcotest.test_case "fastq malformed rejected" `Quick test_fastq_malformed_rejected;
    Alcotest.test_case "fastq to fasta" `Quick test_fastq_to_fasta;
    Alcotest.test_case "paf roundtrip" `Quick test_paf_roundtrip;
    qtest prop_paf_roundtrip;
    Alcotest.test_case "paf malformed rejected" `Quick test_paf_malformed_rejected;
    Alcotest.test_case "paf of alignment" `Quick test_paf_of_alignment;
    Alcotest.test_case "cosim passes" `Quick test_cosim_passes;
    Alcotest.test_case "cosim detects bugs" `Quick test_cosim_detects_bugs;
    Alcotest.test_case "cosim mismatch cap hit" `Quick test_cosim_mismatch_cap_hit;
    Alcotest.test_case "cosim mismatch cap not hit" `Quick test_cosim_mismatch_cap_not_hit;
    Alcotest.test_case "cosim vectors capture" `Quick test_cosim_vectors_capture;
  ]
