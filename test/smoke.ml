(* Differential smoke check over the full catalog: reference vs systolic. *)
open Dphls_core

let () =
  let fails = ref 0 in
  List.iter
    (fun (e : Dphls_kernels.Catalog.entry) ->
      let (Registry.Packed (k, p)) = e.Dphls_kernels.Catalog.packed in
      let rng = Dphls_util.Rng.create (Registry.id e.packed * 7919) in
      for trial = 1 to 25 do
        let len = 8 + Dphls_util.Rng.int rng 56 in
        let w = e.Dphls_kernels.Catalog.gen rng ~len in
        let n_pe = 1 + Dphls_util.Rng.int rng 16 in
        let ref_res = Dphls_reference.Ref_engine.run ~band_pe:n_pe k p w in
        let cfg = Dphls_systolic.Config.create ~n_pe in
        let sys_res, _ = Dphls_systolic.Engine.run cfg k p w in
        if not (Result.equal_alignment ref_res sys_res) then begin
          incr fails;
          if !fails < 8 then
            Printf.printf "MISMATCH kernel=%s trial=%d len=%d npe=%d\n ref: %s\n sys: %s\n"
              (Registry.name e.packed) trial len n_pe
              (Format.asprintf "%a" Result.pp ref_res)
              (Format.asprintf "%a" Result.pp sys_res)
        end
      done;
      Printf.printf "kernel %-26s done (fails so far: %d)\n%!" (Registry.name e.packed)
        !fails)
    Dphls_kernels.Catalog.all;
  Printf.printf "smoke: %d failures\n" !fails;
  exit (if !fails = 0 then 0 else 1)
