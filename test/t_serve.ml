(* The serve layer: wire protocol golden tests, admission/backpressure,
   deadline expiry, cache determinism (differential against
   Dphls.Align), draining, the SLO verdict, and the doc-coverage gate
   that keeps docs/serve.md honest about every error code and field. *)

module Proto = Dphls_serve.Proto
module Cache = Dphls_serve.Cache
module Server = Dphls_serve.Server
module Json = Dphls_analysis.Json
module Metrics = Dphls_obs.Metrics
module Counter = Dphls_obs.Counter

(* a server with a deterministic, manually-advanced clock *)
let make_server ?(queue_depth = 256) ?(batch_max = 64) ?(cache_capacity = 64)
    ?(max_seq_len = 512) ?(max_line_bytes = 4096) ?default_deadline_ms
    ?slo_p99_ms ?(metrics = Metrics.disabled) () =
  let clock = ref 0.0 in
  let cfg =
    {
      (Server.default_config ()) with
      Server.queue_depth;
      batch_max;
      cache_capacity;
      max_seq_len;
      max_line_bytes;
      default_deadline_ms;
      slo_p99_ms;
      metrics;
      now = (fun () -> !clock);
    }
  in
  (Server.create cfg, clock)

let member_str name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "response field %S is not a string" name

let member_num name j =
  match Json.member name j with
  | Some (Json.Num f) -> f
  | _ -> Alcotest.failf "response field %S is not a number" name

let parse_response r =
  let line = Proto.response_line r in
  match Json.parse line with
  | Ok j -> j
  | Error m -> Alcotest.failf "response line is not valid JSON (%s): %s" m line

let one = function
  | [ r ] -> r
  | rs -> Alcotest.failf "expected exactly one response, got %d" (List.length rs)

let expect_error code r =
  match r with
  | Proto.Error_response e ->
    Alcotest.(check string)
      "error code" (Proto.error_name code) (Proto.error_name e.code)
  | Proto.Ok_response _ -> Alcotest.fail "expected an error response"

(* Proto.Ok_response carries an inlined record, which cannot escape a
   match — copy the fields into a plain record for assertions *)
type ok = {
  rid : string;
  score : int;
  cigar : string;
  cycles : int option;
  engine : string;
  cached : bool;
  latency_ms : float;
}

let expect_ok r =
  match r with
  | Proto.Ok_response { rid; score; cigar; cycles; engine; cached; latency_ms }
    ->
    { rid; score; cigar; cycles; engine; cached; latency_ms }
  | Proto.Error_response e ->
    Alcotest.failf "expected ok, got %s: %s" (Proto.error_name e.code)
      e.message

(* ---- protocol ---- *)

let test_parse_valid () =
  match
    Proto.parse_request
      "{\"id\":\"r1\",\"kernel\":\"local-linear\",\"qry\":\"ACGT\",\"ref\":\"ACGA\",\"band\":{\"mode\":\"fixed\",\"width\":8},\"engine\":\"systolic\",\"deadline_ms\":50}"
  with
  | Error _ -> Alcotest.fail "valid request rejected"
  | Ok req ->
    Alcotest.(check (option string)) "id" (Some "r1") req.Proto.rid;
    Alcotest.(check string) "kernel" "local-linear" req.Proto.kernel_spec;
    Alcotest.(check string) "qry" "ACGT" req.Proto.qry;
    Alcotest.(check string) "ref" "ACGA" req.Proto.ref_seq;
    Alcotest.(check string) "band" "fixed:8"
      (Proto.band_signature req.Proto.band);
    Alcotest.(check string) "engine" "systolic" req.Proto.engine_label;
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 50.0)
      req.Proto.deadline_ms

let test_parse_defaults () =
  match Proto.parse_request "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\"}" with
  | Error _ -> Alcotest.fail "minimal request rejected"
  | Ok req ->
    Alcotest.(check (option string)) "no id" None req.Proto.rid;
    Alcotest.(check string) "numeric kernel" "1" req.Proto.kernel_spec;
    Alcotest.(check string) "band keeps kernel" "keep"
      (Proto.band_signature req.Proto.band);
    Alcotest.(check string) "engine auto" "auto" req.Proto.engine_label;
    Alcotest.(check (option (float 0.0))) "no deadline" None
      req.Proto.deadline_ms

let bad_requests =
  [
    ("not json at all", "garbage");
    ("non-object", "[1,2]");
    ("unknown field", "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"bogus\":1}");
    ("missing kernel", "{\"qry\":\"A\",\"ref\":\"C\"}");
    ("missing qry", "{\"kernel\":1,\"ref\":\"C\"}");
    ("missing ref", "{\"kernel\":1,\"qry\":\"A\"}");
    ("kernel bool", "{\"kernel\":true,\"qry\":\"A\",\"ref\":\"C\"}");
    ("kernel float", "{\"kernel\":1.5,\"qry\":\"A\",\"ref\":\"C\"}");
    ("band not object", "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":3}");
    ( "band no mode",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":{\"width\":4}}" );
    ( "band unknown mode",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":{\"mode\":\"wavy\"}}"
    );
    ( "band unknown field",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":{\"mode\":\"none\",\"x\":1}}"
    );
    ( "fixed band without width",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":{\"mode\":\"fixed\"}}"
    );
    ( "fixed band with threshold",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":{\"mode\":\"fixed\",\"width\":4,\"threshold\":2}}"
    );
    ( "band width zero",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":{\"mode\":\"fixed\",\"width\":0}}"
    );
    ( "none band with width",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"band\":{\"mode\":\"none\",\"width\":4}}"
    );
    ( "unknown engine",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"engine\":\"quantum\"}" );
    ( "negative deadline",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"deadline_ms\":-5}" );
    ( "deadline string",
      "{\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"deadline_ms\":\"soon\"}" );
  ]

let test_parse_malformed () =
  List.iter
    (fun (what, line) ->
      match Proto.parse_request line with
      | Ok _ -> Alcotest.failf "%s: accepted" what
      | Error (_, code, _) ->
        Alcotest.(check string) what "bad_request" (Proto.error_name code))
    bad_requests

let test_parse_keeps_rid_on_error () =
  match
    Proto.parse_request "{\"id\":\"r9\",\"kernel\":1,\"qry\":\"A\",\"ref\":\"C\",\"mystery\":0}"
  with
  | Error (Some "r9", Proto.Bad_request, _) -> ()
  | Error _ -> Alcotest.fail "lost the request id"
  | Ok _ -> Alcotest.fail "accepted"

let test_response_lines_golden () =
  Alcotest.(check string)
    "error line"
    "{\"id\":null,\"status\":\"error\",\"code\":\"internal\",\"message\":\"boom\"}"
    (Proto.response_line
       (Proto.Error_response
          { rid = None; code = Proto.Internal; message = "boom" }));
  Alcotest.(check string)
    "ok line"
    "{\"id\":\"x\",\"status\":\"ok\",\"score\":5,\"cigar\":\"3M\",\"cycles\":null,\"engine\":\"reference\",\"cached\":false,\"latency_ms\":1.500}"
    (Proto.response_line
       (Proto.Ok_response
          {
            rid = "x";
            score = 5;
            cigar = "3M";
            cycles = None;
            engine = "reference";
            cached = false;
            latency_ms = 1.5;
          }));
  (* every emitted line must re-parse under the same strict parser *)
  List.iter
    (fun code ->
      let r =
        Proto.Error_response
          { rid = Some "q\"uote"; code; message = "line\nbreak \x01" }
      in
      match Json.parse (Proto.response_line r) with
      | Ok j ->
        Alcotest.(check string) "code round-trips" (Proto.error_name code)
          (member_str "code" j)
      | Error m -> Alcotest.failf "unparseable response: %s" m)
    Proto.error_codes

let test_json_escape () =
  Alcotest.(check string) "escapes" "a\\\"b\\\\c\\nd\\te\\u0001"
    (Proto.json_escape "a\"b\\c\nd\te\x01")

(* ---- cache ---- *)

let v s = { Cache.score = s; cigar = ""; cycles = None; engine = "e" }

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" (v 1);
  Cache.add c "b" (v 2);
  (* touch "a" so "b" is now the LRU victim *)
  Alcotest.(check bool) "a hit" true (Cache.find c "a" <> None);
  Cache.add c "c" (v 3);
  Alcotest.(check int) "capacity held" 2 (Cache.length c);
  Alcotest.(check bool) "b evicted" true (Cache.find c "b" = None);
  Alcotest.(check bool) "a kept" true (Cache.find c "a" <> None);
  Alcotest.(check bool) "c kept" true (Cache.find c "c" <> None);
  Cache.add c "a" (v 9);
  (match Cache.find c "a" with
  | Some { Cache.score = 9; _ } -> ()
  | _ -> Alcotest.fail "refresh did not replace the value");
  let disabled = Cache.create ~capacity:0 in
  Cache.add disabled "a" (v 1);
  Alcotest.(check bool) "capacity 0 never stores" true
    (Cache.find disabled "a" = None)

(* ---- server: protocol errors through submit ---- *)

let test_submit_error_codes () =
  let server, _clock = make_server ~max_seq_len:8 ~max_line_bytes:128 () in
  expect_error Proto.Bad_request (one (Server.submit server "nonsense"));
  expect_error Proto.Unknown_kernel
    (one (Server.submit server "{\"kernel\":42,\"qry\":\"A\",\"ref\":\"C\"}"));
  expect_error Proto.Unknown_kernel
    (one
       (Server.submit server
          "{\"kernel\":\"nessie\",\"qry\":\"A\",\"ref\":\"C\"}"));
  (* kernels whose alphabet the line protocol cannot carry *)
  List.iter
    (fun id ->
      expect_error Proto.Unsupported
        (one
           (Server.submit server
              (Printf.sprintf "{\"kernel\":%d,\"qry\":\"A\",\"ref\":\"C\"}" id))))
    [ 8; 9; 14 ];
  (* sequence over max_seq_len, then a whole line over max_line_bytes *)
  expect_error Proto.Oversized
    (one
       (Server.submit server
          "{\"kernel\":1,\"qry\":\"ACGTACGTA\",\"ref\":\"C\"}"));
  expect_error Proto.Oversized
    (one (Server.submit server (String.make 256 ' ')));
  expect_error Proto.Bad_request
    (one (Server.submit server "{\"kernel\":1,\"qry\":\"AXA\",\"ref\":\"C\"}"));
  expect_error Proto.Bad_request
    (one (Server.submit server "{\"kernel\":1,\"qry\":\"\",\"ref\":\"C\"}"));
  (* a forced engine that refuses the kernel shape surfaces as
     unsupported at flush *)
  let rs =
    Server.submit server
      "{\"id\":\"bp\",\"kernel\":1,\"qry\":\"ACGT\",\"ref\":\"ACGT\",\"engine\":\"bitpar\"}"
  in
  Alcotest.(check int) "queued" 0 (List.length rs);
  expect_error Proto.Unsupported (one (Server.flush server));
  Server.close server

(* ---- backpressure ---- *)

let test_backpressure () =
  let metrics = Metrics.create () in
  let server, _clock =
    make_server ~queue_depth:2 ~batch_max:100 ~metrics ()
  in
  let req i =
    Printf.sprintf "{\"id\":\"r%d\",\"kernel\":1,\"qry\":\"ACGT\",\"ref\":\"ACGT\"}" i
  in
  Alcotest.(check int) "first queued" 0 (List.length (Server.submit server (req 1)));
  Alcotest.(check int) "second queued" 0 (List.length (Server.submit server (req 2)));
  expect_error Proto.Overloaded (one (Server.submit server (req 3)));
  Alcotest.(check int) "pending" 2 (Server.pending server);
  (* a different group has its own bounded queue *)
  Alcotest.(check int) "other kernel unaffected" 0
    (List.length
       (Server.submit server "{\"kernel\":19,\"qry\":\"ACGT\",\"ref\":\"ACGT\"}"));
  let rs = Server.drain server in
  Alcotest.(check int) "drained" 3 (List.length rs);
  List.iter (fun r -> ignore (expect_ok r)) rs;
  let s = Server.summary server in
  Alcotest.(check int) "summary admitted" 3 s.Server.admitted;
  Alcotest.(check int) "summary rejected" 1 s.Server.rejected;
  Alcotest.(check int) "counter admitted" 3
    (Metrics.get metrics Counter.Serve_requests_admitted);
  Alcotest.(check int) "counter rejected" 1
    (Metrics.get metrics Counter.Serve_requests_rejected);
  Server.close server

(* ---- deadlines ---- *)

let test_deadline_expiry () =
  let metrics = Metrics.create () in
  let server, clock = make_server ~metrics () in
  ignore
    (Server.submit server
       "{\"id\":\"late\",\"kernel\":1,\"qry\":\"ACGT\",\"ref\":\"ACGT\",\"deadline_ms\":10}");
  ignore
    (Server.submit server
       "{\"id\":\"calm\",\"kernel\":1,\"qry\":\"ACGT\",\"ref\":\"ACGT\"}");
  clock := 0.05 (* 50 ms later: past "late"'s deadline, "calm" has none *);
  let rs = Server.flush server in
  Alcotest.(check int) "both answered" 2 (List.length rs);
  (match rs with
  | [ first; second ] ->
    expect_error Proto.Deadline_exceeded first;
    (match first with
    | Proto.Error_response { rid = Some "late"; _ } -> ()
    | _ -> Alcotest.fail "expired response lost its id");
    let ok = expect_ok second in
    Alcotest.(check string) "survivor id" "calm" ok.rid
  | _ -> Alcotest.fail "admission order lost");
  Alcotest.(check int) "expired counter" 1
    (Metrics.get metrics Counter.Serve_requests_expired);
  (* config-default deadline applies when the request has none *)
  let server2, clock2 = make_server ~default_deadline_ms:5.0 () in
  ignore
    (Server.submit server2 "{\"kernel\":1,\"qry\":\"ACGT\",\"ref\":\"ACGT\"}");
  clock2 := 1.0;
  expect_error Proto.Deadline_exceeded (one (Server.flush server2));
  Server.close server;
  Server.close server2

(* ---- cache determinism (differential vs Dphls.Align) ---- *)

let test_cache_hit_determinism () =
  let metrics = Metrics.create () in
  let server, _clock = make_server ~batch_max:1 ~metrics () in
  let query = "ACGTACGTGG" and reference = "ACGAACGTCG" in
  let line =
    Printf.sprintf "{\"kernel\":1,\"qry\":\"%s\",\"ref\":\"%s\"}" query
      reference
  in
  let first = expect_ok (one (Server.submit server line)) in
  let second = expect_ok (one (Server.submit server line)) in
  Alcotest.(check bool) "first computed" false first.cached;
  Alcotest.(check bool) "second cached" true second.cached;
  Alcotest.(check int) "same score" first.score second.score;
  Alcotest.(check string) "same cigar" first.cigar second.cigar;
  Alcotest.(check string) "same engine" first.engine second.engine;
  Alcotest.(check (option int)) "same cycles" first.cycles second.cycles;
  (* the served answer is the library answer *)
  let golden = Dphls.Align.global ~query ~reference () in
  Alcotest.(check int) "score matches Align" golden.Dphls.Align.score
    first.score;
  Alcotest.(check string) "cigar matches Align" golden.Dphls.Align.cigar
    first.cigar;
  Alcotest.(check int) "cache_hits counter" 1
    (Metrics.get metrics Counter.Serve_cache_hits);
  (* a band override is a different cache identity *)
  let banded =
    Printf.sprintf
      "{\"kernel\":1,\"qry\":\"%s\",\"ref\":\"%s\",\"band\":{\"mode\":\"fixed\",\"width\":4}}"
      query reference
  in
  let third = expect_ok (one (Server.submit server banded)) in
  Alcotest.(check bool) "band override misses" false third.cached;
  Server.close server

(* ---- coalescing, draining, response fields ---- *)

let test_autoflush_and_drain_order () =
  let server, _clock = make_server ~batch_max:3 () in
  (* distinct queries so no request short-circuits as a cache hit *)
  let qrys = [| "AACGTA"; "CACGTA"; "GACGTA"; "TACGTA"; "AGCGTA" |] in
  let req i =
    Printf.sprintf
      "{\"id\":\"r%d\",\"kernel\":19,\"qry\":\"%s\",\"ref\":\"ACGTAC\"}" i
      qrys.(i - 1)
  in
  Alcotest.(check int) "r1 queued" 0 (List.length (Server.submit server (req 1)));
  Alcotest.(check int) "r2 queued" 0 (List.length (Server.submit server (req 2)));
  let batch = Server.submit server (req 3) in
  Alcotest.(check int) "batch_max trips a flush" 3 (List.length batch);
  Alcotest.(check (list string)) "admission order" [ "r1"; "r2"; "r3" ]
    (List.map (fun r -> (expect_ok r).rid) batch);
  (* auto requests without ids drain in order with server-assigned ids *)
  for i = 4 to 5 do
    ignore (Server.submit server (req i))
  done;
  let rest = Server.drain server in
  Alcotest.(check (list string)) "drain keeps order" [ "r4"; "r5" ]
    (List.map (fun r -> (expect_ok r).rid) rest);
  Alcotest.(check int) "nothing pending" 0 (Server.pending server);
  Alcotest.(check int) "drain again is empty" 0
    (List.length (Server.drain server));
  Server.close server

let test_response_fields_by_engine () =
  let server, _clock = make_server ~batch_max:1 () in
  let submit engine =
    expect_ok
      (one
         (Server.submit server
            (Printf.sprintf
               "{\"kernel\":1,\"qry\":\"ACGT\",\"ref\":\"ACGT\",\"engine\":%S}"
               engine)))
  in
  let systolic = submit "systolic" in
  Alcotest.(check string) "systolic ran" "systolic" systolic.engine;
  Alcotest.(check bool) "systolic has cycles" true (systolic.cycles <> None);
  let reference = submit "reference" in
  Alcotest.(check string) "reference ran" "reference" reference.engine;
  Alcotest.(check (option int)) "reference has no cycle model" None
    reference.cycles;
  (* wire form: cycles null, score/latency numbers *)
  let j =
    parse_response
      (Proto.Ok_response
         {
           rid = systolic.rid;
           score = systolic.score;
           cigar = systolic.cigar;
           cycles = None;
           engine = systolic.engine;
           cached = systolic.cached;
           latency_ms = 0.25;
         })
  in
  Alcotest.(check bool) "cycles null on the wire" true
    (Json.member "cycles" j = Some Json.Null);
  Alcotest.(check (float 1e-9)) "latency on the wire" 0.25
    (member_num "latency_ms" j);
  Server.close server

(* the auto choice on a bit-parallel-eligible kernel routes the whole
   batch through bitpar and still answers score-only requests *)
let test_auto_routes_fastpath () =
  let metrics = Metrics.create () in
  let server, _clock = make_server ~batch_max:2 ~metrics () in
  let line = "{\"kernel\":19,\"qry\":\"ACGTACGT\",\"ref\":\"ACGAACGT\"}" in
  ignore (Server.submit server line);
  let rs =
    Server.submit server "{\"kernel\":19,\"qry\":\"ACGTACGA\",\"ref\":\"ACGAACGT\"}"
  in
  Alcotest.(check int) "one coalesced batch" 2 (List.length rs);
  List.iter
    (fun r ->
      let ok = expect_ok r in
      Alcotest.(check string) "bitpar served it" "bitpar" ok.engine;
      Alcotest.(check string) "score-only: empty cigar" "" ok.cigar)
    rs;
  Alcotest.(check bool) "fastpath hits counted" true
    (Metrics.get metrics Counter.Engine_fastpath_hits >= 2);
  Server.close server

(* ---- SLO verdict ---- *)

let test_slo_verdict () =
  (* every completed request takes 40 ms on the fake clock *)
  let run slo =
    let server, clock = make_server ~batch_max:64 ?slo_p99_ms:slo () in
    for _ = 1 to 5 do
      ignore
        (Server.submit server "{\"kernel\":1,\"qry\":\"ACGT\",\"ref\":\"ACGT\"}");
      clock := !clock +. 0.04;
      ignore (Server.flush server)
    done;
    let s = Server.summary server in
    Server.close server;
    s
  in
  let met = run (Some 100.0) in
  Alcotest.(check bool) "slo met" true met.Server.slo_ok;
  let violated = run (Some 10.0) in
  Alcotest.(check bool) "slo violated" false violated.Server.slo_ok;
  Alcotest.(check bool) "p99 is a real latency" true
    (violated.Server.p99_ms >= 39.0);
  let unset = run None in
  Alcotest.(check bool) "no slo is vacuously ok" true unset.Server.slo_ok;
  (* the JSON summary carries the verdict for the CI smoke *)
  let j =
    match Json.parse (Server.summary_to_json violated) with
    | Ok j -> j
    | Error m -> Alcotest.failf "summary json: %s" m
  in
  Alcotest.(check bool) "slo_ok on the wire" true
    (Json.member "slo_ok" j = Some (Json.Bool false))

(* ---- docs coverage ---- *)

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* docs/serve.md must name every error code the protocol can emit and
   every request/response field; adding a variant or field without
   documenting it fails here *)
let test_docs_cover_protocol () =
  let doc = read_file "../docs/serve.md" in
  let contains s =
    let n = String.length doc and m = String.length s in
    let rec go i = i + m <= n && (String.sub doc i m = s || go (i + 1)) in
    go 0
  in
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "error code %S documented" (Proto.error_name code))
        true
        (contains (Proto.error_name code)))
    Proto.error_codes;
  List.iter
    (fun field ->
      Alcotest.(check bool)
        (Printf.sprintf "field %S documented" field)
        true
        (contains (Printf.sprintf "`%s`" field)))
    [
      "id"; "kernel"; "qry"; "ref"; "band"; "engine"; "deadline_ms";
      "status"; "score"; "cigar"; "cycles"; "cached"; "latency_ms";
      "code"; "message"; "mode"; "width"; "threshold";
    ]

let suite =
  [
    Alcotest.test_case "proto: valid request" `Quick test_parse_valid;
    Alcotest.test_case "proto: defaults" `Quick test_parse_defaults;
    Alcotest.test_case "proto: malformed requests" `Quick test_parse_malformed;
    Alcotest.test_case "proto: rid survives rejection" `Quick
      test_parse_keeps_rid_on_error;
    Alcotest.test_case "proto: golden response lines" `Quick
      test_response_lines_golden;
    Alcotest.test_case "proto: json escaping" `Quick test_json_escape;
    Alcotest.test_case "cache: lru eviction" `Quick test_cache_lru;
    Alcotest.test_case "server: every submit error code" `Quick
      test_submit_error_codes;
    Alcotest.test_case "server: backpressure" `Quick test_backpressure;
    Alcotest.test_case "server: deadline expiry" `Quick test_deadline_expiry;
    Alcotest.test_case "server: cache-hit determinism" `Quick
      test_cache_hit_determinism;
    Alcotest.test_case "server: coalescing and drain order" `Quick
      test_autoflush_and_drain_order;
    Alcotest.test_case "server: response fields per engine" `Quick
      test_response_fields_by_engine;
    Alcotest.test_case "server: auto routes the fast path" `Quick
      test_auto_routes_fastpath;
    Alcotest.test_case "server: slo verdict" `Quick test_slo_verdict;
    Alcotest.test_case "docs: serve.md covers the protocol" `Quick
      test_docs_cover_protocol;
  ]
