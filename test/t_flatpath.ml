(* Compiled flat datapath tests: saturating Mul/Abs at width-62 extremes,
   compile-pass structure (CSE, constant folding, strict binding), an
   allocation regression pinning the O(1)-words-per-wavefront property of
   the compiled hot path, and a catalog-wide differential fuzz of the
   compiled planes against the boxed interpreter through both engines. *)
open Dphls_core
module Score = Dphls_util.Score
module Datapath = Dphls_core.Datapath

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Saturating Mul/Abs: the Score ops and the regression that both the
   interpreter and the compiled evaluator route through them.          *)

let big = max_int / 8

let test_score_mul_abs_extremes () =
  Alcotest.(check bool) "mul overflow saturates positive" true
    (Score.is_pos_inf (Score.mul big 100));
  Alcotest.(check bool) "mul overflow saturates negative" true
    (Score.is_neg_inf (Score.mul big (-100)));
  Alcotest.(check bool) "mul neg*neg overflow saturates positive" true
    (Score.is_pos_inf (Score.mul (-big) (-100)));
  Alcotest.(check bool) "infinity absorbing with sign" true
    (Score.is_neg_inf (Score.mul Score.pos_inf (-2)));
  Alcotest.(check bool) "neg_inf * neg flips to pos_inf" true
    (Score.is_pos_inf (Score.mul Score.neg_inf (-2)));
  Alcotest.(check int) "mul 0 pos_inf = 0" 0 (Score.mul 0 Score.pos_inf);
  Alcotest.(check int) "mul neg_inf 0 = 0" 0 (Score.mul Score.neg_inf 0);
  Alcotest.(check int) "in-range product exact" (-42) (Score.mul 6 (-7));
  Alcotest.(check bool) "abs neg_inf = pos_inf" true
    (Score.is_pos_inf (Score.abs Score.neg_inf));
  Alcotest.(check int) "abs in range" 5 (Score.abs (-5))

(* A two-layer cell exercising Mul and Abs; evaluated at extreme inputs
   through the boxed interpreter AND the compiled evaluator, both must
   saturate identically (the historical bug: eval used raw [( * )] and
   an unsaturated [abs]). *)
let mul_abs_cell =
  {
    Datapath.layers = [| Datapath.Mul (Datapath.Up 0, Datapath.Left 0);
                         Datapath.Abs (Datapath.Diag 1) |];
    tb_fields = [];
  }

let test_mul_abs_datapath_saturates () =
  let bindings = { Datapath.params = []; tables = [] } in
  let input =
    { Pe.up = [| big; 0 |]; diag = [| 0; Score.neg_inf |]; left = [| 100; 0 |];
      qry = [| 0 |]; rf = [| 0 |]; row = 1; col = 1 }
  in
  let out = (Datapath.eval mul_abs_cell bindings) input in
  Alcotest.(check bool) "eval: Mul saturates" true
    (Score.is_pos_inf out.Pe.scores.(0));
  Alcotest.(check bool) "eval: Abs neg_inf -> pos_inf" true
    (Score.is_pos_inf out.Pe.scores.(1));
  let flat = Datapath.flat (Datapath.compile mul_abs_cell bindings) in
  let buf = Pe.create_buffers ~n_layers:2 in
  buf.Pe.b_up <- input.Pe.up;
  buf.Pe.b_diag <- input.Pe.diag;
  buf.Pe.b_left <- input.Pe.left;
  buf.Pe.b_qry <- input.Pe.qry;
  buf.Pe.b_rf <- input.Pe.rf;
  buf.Pe.b_row <- 1;
  buf.Pe.b_col <- 1;
  flat buf;
  Alcotest.(check (array int)) "compiled == interpreted at extremes"
    out.Pe.scores buf.Pe.b_scores

(* ------------------------------------------------------------------ *)
(* Compile pass structure.                                             *)

let no_bindings = { Datapath.params = []; tables = [] }

let test_compile_constant_folding () =
  let cell =
    { Datapath.layers = [| Datapath.Add (Datapath.Const 2, Datapath.Const 3) |];
      tb_fields = [] }
  in
  let p = Datapath.compile cell no_bindings in
  Alcotest.(check int) "constant layer folds to one instruction" 1
    (Datapath.program_insts p);
  let buf = Pe.create_buffers ~n_layers:1 in
  Datapath.flat p buf;
  Alcotest.(check int) "folded value" 5 buf.Pe.b_scores.(0)

let test_compile_cse () =
  let shared = Datapath.Add (Datapath.Up 0, Datapath.Const 1) in
  let dup =
    Datapath.compile
      { Datapath.layers = [| Datapath.Add (shared, shared) |]; tb_fields = [] }
      no_bindings
  in
  (* Up 0, fused add-immediate (once), top Add — the folded Const leaf
     is dead-code-eliminated *)
  Alcotest.(check int) "shared subexpression emitted once" 3
    (Datapath.program_insts dup);
  let distinct =
    Datapath.compile
      { Datapath.layers =
          [| Datapath.Add (shared, Datapath.Add (Datapath.Up 0, Datapath.Const 2)) |];
        tb_fields = [] }
      no_bindings
  in
  Alcotest.(check bool) "distinct subexpressions cost more" true
    (Datapath.program_insts dup < Datapath.program_insts distinct)

let test_compile_guards () =
  let unbound = { Datapath.layers = [| Datapath.Param "nope" |]; tb_fields = [] } in
  Alcotest.(check bool) "unbound param rejected at compile time" true
    (try ignore (Datapath.compile unbound no_bindings); false
     with Invalid_argument _ -> true);
  let one_layer =
    Datapath.compile
      { Datapath.layers = [| Datapath.Const 7 |]; tb_fields = [] }
      no_bindings
  in
  let wrong = Pe.create_buffers ~n_layers:2 in
  Alcotest.(check bool) "layer-count mismatch rejected at exec" true
    (try Datapath.exec one_layer (Array.make 16 0) wrong; false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Allocation regression: the systolic wavefront loop with a compiled
   datapath must allocate O(1) minor words per run — strictly less than
   one word per cell — while the boxed interpreter boxes input/output
   records and score arrays per cell. An order-of-magnitude differential
   gap keeps the check robust to setup-cost noise (grid, traceback,
   per-run compilation). *)

let minor_words_of f =
  let before = Gc.minor_words () in
  let r = f () in
  ignore (Sys.opaque_identity r);
  int_of_float (Gc.minor_words () -. before)

let test_allocation_regression () =
  let module K02 = Dphls_kernels.K02_global_affine in
  let len = 160 in
  let rng = Dphls_util.Rng.create 404 in
  let w =
    Workload.of_bases
      ~query:(Dphls_alphabet.Dna.random rng len)
      ~reference:(Dphls_alphabet.Dna.random rng len)
  in
  let cfg = Dphls_systolic.Config.create ~n_pe:16 in
  let run k = Dphls_systolic.Engine.run cfg k K02.default w in
  ignore (run K02.kernel) (* warm-up *);
  let compiled = minor_words_of (fun () -> run K02.kernel) in
  let boxed = minor_words_of (fun () -> run (Kernel.boxed K02.kernel)) in
  let cells = len * len in
  Alcotest.(check bool)
    (Printf.sprintf "compiled run allocates < 1 word/cell (%d words, %d cells)"
       compiled cells)
    true (compiled < cells);
  Alcotest.(check bool)
    (Printf.sprintf "boxed allocates > 10x compiled (%d vs %d words)" boxed compiled)
    true (boxed > 10 * compiled)

(* ------------------------------------------------------------------ *)
(* Catalog-wide differential fuzz: compiled planes vs boxed interpreter
   closures through BOTH engines, alignments AND cycle-level stats
   bit-identical. Ids 16-18 put the adaptive band in the loop: the band
   window is decided from run-time scores, so any score divergence would
   cascade into a different pruned cell set. *)

let prop_compiled_vs_boxed id =
  QCheck.Test.make
    ~name:(Printf.sprintf "kernel #%d compiled == boxed through both engines" id)
    ~count:20
    QCheck.(pair (int_range 8 72) (int_range 1 16))
    (fun (len, n_pe) ->
      let e = Dphls_kernels.Catalog.find id in
      let (Registry.Packed (k, p)) = e.packed in
      let kb = Kernel.boxed k in
      let rng = Dphls_util.Rng.create ((id * 733) + (len * 29) + n_pe) in
      let w = e.Dphls_kernels.Catalog.gen rng ~len in
      let gold_c = Dphls_reference.Ref_engine.run ~band_pe:n_pe k p w in
      let gold_b = Dphls_reference.Ref_engine.run ~band_pe:n_pe kb p w in
      let cfg = Dphls_systolic.Config.create ~n_pe in
      let sys_c, st_c = Dphls_systolic.Engine.run cfg k p w in
      let sys_b, st_b = Dphls_systolic.Engine.run cfg kb p w in
      Result.equal_alignment gold_c gold_b
      && Result.equal_alignment sys_c sys_b
      && Result.equal_alignment gold_c sys_c
      && st_c.Dphls_systolic.Engine.pe_fires = st_b.Dphls_systolic.Engine.pe_fires
      && st_c.Dphls_systolic.Engine.cycles.Dphls_systolic.Engine.total
         = st_b.Dphls_systolic.Engine.cycles.Dphls_systolic.Engine.total
      && st_c.Dphls_systolic.Engine.tb_words = st_b.Dphls_systolic.Engine.tb_words)

let differential_tests =
  List.map (fun id -> qtest (prop_compiled_vs_boxed id)) Dphls_kernels.Catalog.ids

let suite =
  [
    Alcotest.test_case "Score.mul/abs extremes" `Quick test_score_mul_abs_extremes;
    Alcotest.test_case "Mul/Abs saturate in eval and compiled" `Quick
      test_mul_abs_datapath_saturates;
    Alcotest.test_case "compile folds constants" `Quick test_compile_constant_folding;
    Alcotest.test_case "compile shares subexpressions" `Quick test_compile_cse;
    Alcotest.test_case "compile/exec guards" `Quick test_compile_guards;
    Alcotest.test_case "compiled hot path is allocation-free" `Quick
      test_allocation_regression;
  ]
  @ differential_tests
