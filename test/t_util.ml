(* Unit and property tests for Dphls_util. *)
module Rng = Dphls_util.Rng
module Score = Dphls_util.Score
module Bits = Dphls_util.Bits
module Stats = Dphls_util.Stats
module Pretty = Dphls_util.Pretty

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (f >= 0.0 && f < 2.5);
    let x = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_uniformity () =
  let rng = Rng.create 4 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Rng.int rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.22 && frac < 0.28))
    counts

let test_rng_weighted () =
  let rng = Rng.create 5 in
  let w = [| 1.0; 3.0; 0.0; 6.0 |] in
  let counts = Array.make 4 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.weighted_index rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(2);
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "weight 0.1" true (abs_float (frac 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "weight 0.3" true (abs_float (frac 1 -. 0.3) < 0.02);
  Alcotest.(check bool) "weight 0.6" true (abs_float (frac 3 -. 0.6) < 0.02)

let test_rng_gaussian () =
  let rng = Rng.create 6 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mean:3.0 ~stddev:2.0) in
  Alcotest.(check bool) "mean" true (abs_float (Stats.mean xs -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev" true (abs_float (Stats.stddev xs -. 2.0) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 7 in
  let arr = Array.init 20 Fun.id in
  let copy = Array.copy arr in
  Rng.shuffle rng copy;
  Array.sort compare copy;
  Alcotest.(check bool) "same multiset" true (copy = arr)

let test_rng_split_independent () =
  let a = Rng.create 8 in
  let b = Rng.split a in
  let va = Rng.int64 a and vb = Rng.int64 b in
  Alcotest.(check bool) "split streams differ" true (va <> vb)

let test_score_saturation () =
  Alcotest.(check bool) "neg_inf absorbs" true
    (Score.is_neg_inf (Score.add Score.neg_inf 1000));
  Alcotest.(check bool) "pos_inf absorbs" true
    (Score.is_pos_inf (Score.add Score.pos_inf (-1000)));
  Alcotest.(check int) "plain add" 7 (Score.add 3 4);
  Alcotest.(check bool) "no wraparound" true
    (Score.add Score.pos_inf Score.pos_inf > 0)

let test_score_objective () =
  Alcotest.(check bool) "max better" true (Score.better Score.Maximize 3 2);
  Alcotest.(check bool) "min better" true (Score.better Score.Minimize 2 3);
  Alcotest.(check bool) "strict" false (Score.better Score.Maximize 2 2);
  Alcotest.(check int) "worst max" Score.neg_inf (Score.worst_value Score.Maximize);
  Alcotest.(check int) "worst min" Score.pos_inf (Score.worst_value Score.Minimize)

let test_bits () =
  Alcotest.(check int) "clog2 1" 0 (Bits.clog2 1);
  Alcotest.(check int) "clog2 2" 1 (Bits.clog2 2);
  Alcotest.(check int) "clog2 5" 3 (Bits.clog2 5);
  Alcotest.(check int) "clog2 256" 8 (Bits.clog2 256);
  Alcotest.(check int) "bits_unsigned 0" 1 (Bits.bits_unsigned 0);
  Alcotest.(check int) "bits_unsigned 255" 8 (Bits.bits_unsigned 255);
  Alcotest.(check int) "signed [-2,1]" 2 (Bits.bits_signed_range (-2) 1);
  Alcotest.(check int) "signed [-3,1]" 3 (Bits.bits_signed_range (-3) 1)

let test_bits_clog2_invalid () =
  Alcotest.check_raises "clog2 0" (Invalid_argument "Bits.clog2") (fun () ->
      ignore (Bits.clog2 0))

let test_stats () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_of xs);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_of xs);
  Alcotest.(check (float 1e-6)) "geomean of 2,8" 4.0 (Stats.geomean [| 2.0; 8.0 |]);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0)

(* Nearest-rank percentile edge cases: the serve SLO gate depends on
   these being exact (a reported percentile is always an observed
   sample; p99 of a small group is its max, not an interpolation). *)
let test_percentile_exact_edges () =
  let one = [| 7.5 |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "1 sample, p%.0f" p)
        7.5
        (Stats.percentile_exact one p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  let two = [| 1.0; 9.0 |] in
  Alcotest.(check (float 0.0)) "2 samples, p50 = lower" 1.0
    (Stats.percentile_exact two 50.0);
  Alcotest.(check (float 0.0)) "2 samples, p99 = max" 9.0
    (Stats.percentile_exact two 99.0);
  (* linear interpolation would report p99 below the worst sample on
     small n — the verdict-flipping behavior percentile_exact removes *)
  Alcotest.(check bool) "interpolated p99 underestimates on n=2" true
    (Stats.percentile two 99.0 < 9.0);
  let hundred = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "100 samples, p99 = 99th value" 99.0
    (Stats.percentile_exact hundred 99.0);
  Alcotest.(check (float 0.0)) "100 samples, p100 = max" 100.0
    (Stats.percentile_exact hundred 100.0);
  Alcotest.(check bool) "empty still rejected" true
    (try
       ignore (Stats.percentile_exact [||] 50.0);
       false
     with Invalid_argument _ -> true)

(* Loop oracle: percentile_exact xs p must equal the smallest observed
   value v with #(samples <= v) >= ceil(p/100 * n), found by brute
   force over the samples themselves. *)
let test_percentile_exact_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"percentile_exact = loop oracle"
       QCheck.(
         pair
           (list_of_size Gen.(int_range 1 40) (int_range (-50) 50))
           (int_range 0 100))
       (fun (ints, p) ->
         QCheck.assume (ints <> []);
         let xs = Array.of_list (List.map float_of_int ints) in
         let p = float_of_int p in
         let n = Array.length xs in
         let need =
           max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n)))
         in
         let le v = Array.fold_left (fun a x -> if x <= v then a + 1 else a) 0 xs in
         let oracle =
           Array.fold_left
             (fun acc x ->
               if le x >= need then match acc with
                 | Some b when b <= x -> acc
                 | _ -> Some x
               else acc)
             None xs
         in
         match oracle with
         | None -> false
         | Some v -> Stats.percentile_exact xs p = v))

let test_pretty () =
  Alcotest.(check string) "sci" "3.51e6" (Pretty.sci 3.51e6);
  Alcotest.(check string) "percent" "1.72%" (Pretty.percent 0.0172);
  Alcotest.(check string) "ratio" "2.43x" (Pretty.ratio 2.43);
  let t = Pretty.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "table has rule" true (String.length t > 0);
  (* All lines of a table are equally wide. *)
  let lines = String.split_on_char '\n' t in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
    Alcotest.test_case "rng gaussian" `Quick test_rng_gaussian;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "score saturation" `Quick test_score_saturation;
    Alcotest.test_case "score objective" `Quick test_score_objective;
    Alcotest.test_case "bits widths" `Quick test_bits;
    Alcotest.test_case "bits clog2 invalid" `Quick test_bits_clog2_invalid;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "percentile_exact edges" `Quick
      test_percentile_exact_edges;
    test_percentile_exact_oracle;
    Alcotest.test_case "pretty" `Quick test_pretty;
  ]
