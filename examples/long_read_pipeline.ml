(* The §6.1 evaluation protocol end-to-end, scaled for a quick run:
   simulate PacBio-like reads from a synthetic genome, align each one
   globally against its source window through GACT-style tiling on
   kernel #2, and report alignment quality plus the aggregate device
   throughput estimate at the Table 2 configuration.

   (The paper uses 1,000 reads x 10,000 bases at 30 % error; this demo
   runs 20 reads x 1,500 bases at 15 % so it finishes in seconds — pass
   the same machinery larger numbers for the full protocol.)

   Run with:  dune exec examples/long_read_pipeline.exe *)

open Dphls_core
module K2 = Dphls_kernels.K02_global_affine

let n_reads = 20
let read_length = 1500

let () =
  let rng = Dphls_util.Rng.create 2026 in
  let genome = Dphls_seqgen.Dna_gen.genome rng (read_length * 8) in
  let reads =
    Dphls_seqgen.Read_sim.simulate rng ~genome
      ~profile:(Dphls_seqgen.Read_sim.scaled Dphls_seqgen.Read_sim.pacbio_30 0.15)
      ~read_length ~count:n_reads
  in
  Printf.printf "simulated %d reads of ~%d bases (15%% error)\n%!" n_reads read_length;

  let p = K2.default in
  let run_tile =
    Dphls_engines.Engines.(tile_runner systolic)
      (Dphls_engines.Engine_intf.config ~n_pe:32 ())
      K2.kernel p
  in
  let total_cycles = ref 0 in
  let total_tiles = ref 0 in
  let exact_recovered = ref 0 in
  let identities = ref [] in
  List.iter
    (fun (r : Dphls_seqgen.Read_sim.read) ->
      let qb, rb = Dphls_seqgen.Read_sim.pair_for_alignment r in
      let query = Types.seq_of_bases qb and reference = Types.seq_of_bases rb in
      let outcome =
        Dphls_tiling.Tiling.align Dphls_tiling.Tiling.default ~run:run_tile ~query
          ~reference
      in
      total_tiles := !total_tiles + outcome.Dphls_tiling.Tiling.tiles;
      total_cycles :=
        !total_cycles
        + List.fold_left (fun a (_, _, c) -> a + c) 0 outcome.Dphls_tiling.Tiling.tile_stats;
      let tiled_score =
        Rescore.affine
          ~sub:(fun q c -> if q.(0) = c.(0) then p.K2.match_ else p.K2.mismatch)
          ~gap_open:p.K2.gap_open ~gap_extend:p.K2.gap_extend ~query ~reference
          ~start_row:0 ~start_col:0 outcome.Dphls_tiling.Tiling.path
      in
      let exact =
        Dphls_baselines.Gact_rtl.score ~match_:p.K2.match_ ~mismatch:p.K2.mismatch
          ~gap_open:p.K2.gap_open ~gap_extend:p.K2.gap_extend ~query:qb ~reference:rb
      in
      if tiled_score = exact then incr exact_recovered;
      let s =
        Alignment_view.stats ~query ~reference ~start_row:0 ~start_col:0
          outcome.Dphls_tiling.Tiling.path
      in
      identities := s.Alignment_view.identity :: !identities)
    reads;

  Printf.printf "tiles executed        : %d (%d per read avg)\n" !total_tiles
    (!total_tiles / n_reads);
  Printf.printf "optimal score exactly recovered on %d/%d reads\n" !exact_recovered
    n_reads;
  Printf.printf "mean alignment identity: %.1f%%\n"
    (100.0 *. Dphls_util.Stats.mean (Array.of_list !identities));
  let per_alignment = float_of_int !total_cycles /. float_of_int n_reads in
  Printf.printf "device work           : %.0f cycles/read\n" per_alignment;
  let throughput =
    Dphls_host.Throughput.alignments_per_sec ~cycles_per_alignment:per_alignment
      ~freq_mhz:250.0 ~n_b:16 ~n_k:4
  in
  Printf.printf "device estimate at (32,16,4), 250 MHz: %s long-read alignments/s\n"
    (Dphls_util.Pretty.sci throughput)
