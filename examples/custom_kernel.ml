(* Defining a brand-new DP kernel through the front-end — the paper's
   productivity claim (§7.6) in action.

   The kernel below is *edit distance* (Levenshtein), which is not one
   of the 15 shipped kernels: a minimizing objective with unit costs and
   a global traceback. Everything needed is the familiar six front-end
   steps — data types, initialization, the PE function, the traceback
   FSM, banding (none) and parallelism — in ~50 lines; the systolic
   back-end, traceback memory and resource model come for free.

   Run with:  dune exec examples/custom_kernel.exe *)

open Dphls_core
module Score = Dphls_util.Score
module Linear = Dphls_kernels.Kdefs.Linear

let edit_distance_kernel : unit Kernel.t =
  let pe () (i : Pe.input) =
    let sub_cost = if Types.equal_ch i.Pe.qry i.Pe.rf then 0 else 1 in
    let best, ptr =
      (* preference order fixes tie-breaks: diagonal first *)
      List.fold_left
        (fun (bs, bp) (s, p) -> if s < bs then (s, p) else (bs, bp))
        (Score.add i.Pe.diag.(0) sub_cost, Linear.ptr_diag)
        [
          (Score.add i.Pe.up.(0) 1, Linear.ptr_up);
          (Score.add i.Pe.left.(0) 1, Linear.ptr_left);
        ]
    in
    { Pe.scores = [| best |]; tb = ptr }
  in
  {
    Kernel.id = 0;
    name = "edit-distance";
    description = "Levenshtein distance (user-defined kernel)";
    objective = Score.Minimize;
    n_layers = 1;
    score_bits = 16;
    tb_bits = 2;
    init_row = (fun () ~ref_len:_ ~layer:_ ~col -> col + 1);
    init_col = (fun () ~qry_len:_ ~layer:_ ~row -> row + 1);
    origin = (fun () ~layer:_ -> 0);
    pe;
    (* boxed-only example kernel: engines adapt [pe] automatically *)
    pe_flat = None;
    score_site = Traceback.Bottom_right;
    traceback =
      (fun () -> Some { Traceback.fsm = Linear.fsm; stop = Traceback.At_origin });
    banding = None;
    traits =
      {
        Traits.adds_per_pe = 3;
        muls_per_pe = 0;
        cmps_per_pe = 3;
        ii = 1;
        logic_depth = 4;
        char_bits = 2;
        param_bits = 0;
      };
  }

(* Simple independent oracle for validation. *)
let levenshtein a b =
  let n = Array.length a and m = Array.length b in
  let prev = Array.init (m + 1) Fun.id in
  let cur = Array.make (m + 1) 0 in
  for i = 1 to n do
    cur.(0) <- i;
    for j = 1 to m do
      let sub = if a.(i - 1) = b.(j - 1) then 0 else 1 in
      cur.(j) <- min (prev.(j - 1) + sub) (min (prev.(j) + 1) (cur.(j - 1) + 1))
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  prev.(m)

let () =
  let rng = Dphls_util.Rng.create 5 in
  let config = Dphls_systolic.Config.create ~n_pe:16 in
  let all_ok = ref true in
  for trial = 1 to 10 do
    let a = Dphls_alphabet.Dna.random rng (20 + Dphls_util.Rng.int rng 60) in
    let b = Dphls_alphabet.Dna.random rng (20 + Dphls_util.Rng.int rng 60) in
    let w = Workload.of_bases ~query:a ~reference:b in
    let result, _ = Dphls_systolic.Engine.run config edit_distance_kernel () w in
    let expect = levenshtein a b in
    if result.Result.score <> expect then all_ok := false;
    if trial <= 3 then
      Printf.printf "edit(%2d aa, %2d aa) = %d (oracle %d), cigar %s\n"
        (Array.length a) (Array.length b) result.Result.score expect
        (Result.cigar result)
  done;
  Printf.printf "all 10 random trials match the oracle: %b\n" !all_ok;
  (* The back-end gives the hardware estimate for free. *)
  let packed = Registry.Packed (edit_distance_kernel, ()) in
  let cfg = { Dphls_resource.Estimate.n_pe = 32; max_qry = 256; max_ref = 256 } in
  let p = Dphls_resource.Estimate.block_percent packed cfg in
  Printf.printf
    "32-PE block estimate: LUT %.2f%%, FF %.2f%%, BRAM %.2f%%, %.0f MHz\n"
    (100.0 *. p.Dphls_resource.Device.lut_pct)
    (100.0 *. p.ff_pct) (100.0 *. p.bram_pct)
    (Dphls_resource.Estimate.max_frequency_mhz packed)
