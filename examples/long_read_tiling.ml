(* Long-read alignment with GACT-style tiling (paper contribution 5).

   A simulated 2 kb PacBio read is aligned globally against its genome
   window with kernel #2, even though the FPGA kernel only supports
   256-base tiles: the host stitches tile tracebacks, and we verify the
   stitched score against the exact full-matrix score.

   Run with:  dune exec examples/long_read_tiling.exe *)

open Dphls_core
module K2 = Dphls_kernels.K02_global_affine

let read_length = 2048

let () =
  let rng = Dphls_util.Rng.create 11 in
  let genome = Dphls_seqgen.Dna_gen.genome rng (read_length * 2) in
  let reads =
    Dphls_seqgen.Read_sim.simulate rng ~genome
      ~profile:(Dphls_seqgen.Read_sim.scaled Dphls_seqgen.Read_sim.pacbio_30 0.15)
      ~read_length ~count:1
  in
  let read = List.hd reads in
  let query_b, reference_b = Dphls_seqgen.Read_sim.pair_for_alignment read in
  Printf.printf "read: %d bases vs window of %d bases (15%% error)\n"
    (Array.length query_b) (Array.length reference_b);

  let p = K2.default in
  let run_tile =
    Dphls_engines.Engines.(tile_runner systolic)
      (Dphls_engines.Engine_intf.config ~n_pe:32 ())
      K2.kernel p
  in
  let query = Types.seq_of_bases query_b in
  let reference = Types.seq_of_bases reference_b in
  let outcome =
    Dphls_tiling.Tiling.align Dphls_tiling.Tiling.default ~run:run_tile ~query
      ~reference
  in
  let tiled_score =
    Rescore.affine
      ~sub:(fun q r -> if q.(0) = r.(0) then p.K2.match_ else p.K2.mismatch)
      ~gap_open:p.K2.gap_open ~gap_extend:p.K2.gap_extend ~query ~reference
      ~start_row:0 ~start_col:0 outcome.Dphls_tiling.Tiling.path
  in
  let exact =
    Dphls_baselines.Gact_rtl.score ~match_:p.K2.match_ ~mismatch:p.K2.mismatch
      ~gap_open:p.K2.gap_open ~gap_extend:p.K2.gap_extend ~query:query_b
      ~reference:reference_b
  in
  let cycles =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 outcome.Dphls_tiling.Tiling.tile_stats
  in
  Printf.printf "tiles       : %d (tile=256, overlap=32)\n"
    outcome.Dphls_tiling.Tiling.tiles;
  Printf.printf "tiled score : %d\n" tiled_score;
  Printf.printf "exact score : %d\n" exact;
  Printf.printf "recovery    : %.4f\n"
    (float_of_int tiled_score /. float_of_int exact);
  Printf.printf "device work : %d cycles over all tiles (%.1f us at 250 MHz)\n"
    cycles
    (float_of_int cycles /. 250.0)
