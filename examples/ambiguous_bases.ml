(* Handling ambiguous bases (the 'N's of real sequencing data) — the
   alphabet variation the paper mentions in §2.2.1 — as another
   user-defined kernel through the front-end.

   The alphabet becomes 5-symbol (A, C, G, T, N); an N aligned against
   anything is neutral (score 0): neither rewarded like a match nor
   punished like a mismatch, the convention used by BLAST and LASTZ.
   Against kernel #1 semantics, reads with masked stretches keep their
   flanking alignments intact instead of being dragged down.

   Run with:  dune exec examples/ambiguous_bases.exe *)

open Dphls_core
module Score = Dphls_util.Score
module Linear = Dphls_kernels.Kdefs.Linear

let n_code = 4

let encode c =
  match c with 'N' | 'n' -> n_code | _ -> Dphls_alphabet.Dna.encode c

let decode b = if b = n_code then 'N' else Dphls_alphabet.Dna.decode b

type params = { match_ : int; mismatch : int; gap : int }

let default = { match_ = 2; mismatch = -2; gap = -2 }

let ambiguous_kernel : params Kernel.t =
  let pe p (i : Pe.input) =
    let q = i.Pe.qry.(0) and r = i.Pe.rf.(0) in
    let sub =
      if q = n_code || r = n_code then 0
      else if q = r then p.match_
      else p.mismatch
    in
    let best, ptr =
      Dphls_kernels.Kdefs.best_of Score.Maximize
        [
          (Score.add i.Pe.diag.(0) sub, Linear.ptr_diag);
          (Score.add i.Pe.up.(0) p.gap, Linear.ptr_up);
          (Score.add i.Pe.left.(0) p.gap, Linear.ptr_left);
        ]
    in
    { Pe.scores = [| best |]; tb = ptr }
  in
  {
    Kernel.id = 0;
    name = "global-linear-ambiguous";
    description = "Needleman-Wunsch with neutral N bases";
    objective = Score.Maximize;
    n_layers = 1;
    score_bits = 16;
    tb_bits = 2;
    init_row = (fun p ~ref_len:_ ~layer:_ ~col -> p.gap * (col + 1));
    init_col = (fun p ~qry_len:_ ~layer:_ ~row -> p.gap * (row + 1));
    origin = (fun _ ~layer:_ -> 0);
    pe;
    (* boxed-only example kernel: engines adapt [pe] automatically *)
    pe_flat = None;
    score_site = Traceback.Bottom_right;
    traceback = (fun _ -> Some { Traceback.fsm = Linear.fsm; stop = Traceback.At_origin });
    banding = None;
    traits =
      {
        Traits.adds_per_pe = 3;
        muls_per_pe = 0;
        cmps_per_pe = 4;
        ii = 1;
        logic_depth = 5;
        char_bits = 3;  (* 5 symbols need 3 bits *)
        param_bits = 48;
      };
  }

let of_string s = Types.seq_of_bases (Array.init (String.length s) (fun i -> encode s.[i]))

let () =
  let reference = "ACGTACGTACGTACGTACGT" in
  let masked = "ACGTACNNNNNNACGTACGT" in
  let config = Dphls_systolic.Config.create ~n_pe:8 in
  let w = Workload.of_seqs ~query:(of_string masked) ~reference:(of_string reference) in
  let result, _ = Dphls_systolic.Engine.run config ambiguous_kernel default w in
  let golden = Dphls_reference.Ref_engine.run ambiguous_kernel default w in
  assert (Result.equal_alignment result golden);

  (* the same pair under plain #1 scoring treats every N as a mismatch *)
  let strict =
    Dphls_reference.Ref_engine.run Dphls_kernels.K01_global_linear.kernel
      { Dphls_kernels.K01_global_linear.match_ = 2; mismatch = -2; gap = -2 }
      (Workload.of_bases
         ~query:(Array.map (fun c -> if c = 'N' then 0 else Dphls_alphabet.Dna.encode c)
                   (Array.init (String.length masked) (String.get masked)))
         ~reference:(Dphls_alphabet.Dna.of_string reference))
  in
  Printf.printf "masked read vs reference\n";
  print_string
    (Alignment_view.render ~decode:(fun c -> decode c.(0)) ~query:w.Workload.query
       ~reference:w.Workload.reference ~start_row:0 ~start_col:0 result.Result.path);
  Printf.printf "ambiguous-aware score : %d (Ns neutral)\n" result.Result.score;
  Printf.printf "naive #1 score        : %d (Ns forced to a base)\n"
    strict.Result.score;
  assert (result.Result.score > strict.Result.score);
  print_endline "N-aware kernel preserves the flanking alignment."
