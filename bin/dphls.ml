(* dphls — command-line front-end to the DP-HLS reproduction.

   Subcommands:
     list                      show the Table 1 kernel catalog
     align                     align two sequences on a chosen kernel
     resources                 print the resource/frequency estimate
     experiment [NAME]         run one or all experiments *)

open Cmdliner
open Dphls_core

let find_kernel spec =
  match int_of_string_opt spec with
  | Some id -> Dphls_kernels.Catalog.find id
  | None -> Dphls_kernels.Catalog.find_by_name spec

(* ---- list ---- *)

let list_cmd =
  let run () =
    Dphls_util.Pretty.print_table ~title:"DP-HLS kernel catalog (Table 1)"
      ~header:[ "#"; "name"; "alphabet"; "layers"; "tb bits"; "application" ]
      (List.map
         (fun (e : Dphls_kernels.Catalog.entry) ->
           [
             string_of_int (Registry.id e.packed);
             Registry.name e.packed;
             e.alphabet;
             string_of_int (Registry.n_layers e.packed);
             string_of_int (Registry.tb_bits e.packed);
             e.application;
           ])
         Dphls_kernels.Catalog.all)
  in
  Cmd.v (Cmd.info "list" ~doc:"Show the 15-kernel catalog")
    Term.(const run $ const ())

(* ---- align ---- *)

let parse_sequence (e : Dphls_kernels.Catalog.entry) s =
  let id = Registry.id e.packed in
  if id = 15 then Types.seq_of_bases (Dphls_alphabet.Protein.of_string s)
  else Types.seq_of_bases (Dphls_alphabet.Dna.of_string s)

(* --band none|fixed|adaptive overrides the kernel's own banding;
   "kernel" (the default) keeps it. Returns None for "keep". *)
let band_override ~mode ~width ~threshold =
  match mode with
  | "kernel" -> None
  | "none" -> Some None
  | "fixed" -> Some (Some (Banding.fixed width))
  | "adaptive" -> Some (Some (Banding.adaptive ~threshold width))
  | other ->
    Printf.eprintf "unknown band mode %S (kernel | none | fixed | adaptive)\n"
      other;
    exit 2

let band_doc = "Band override: kernel (keep), none, fixed or adaptive"

(* --datapath compiled|boxed selects the PE implementation; results are
   bit-identical, boxed exists for differential checking and as the
   reference semantics. *)
let datapath_override ~mode k =
  match mode with
  | "compiled" -> k
  | "boxed" -> Kernel.boxed k
  | other ->
    Printf.eprintf "unknown datapath %S (compiled | boxed)\n" other;
    exit 2

let datapath_doc = "PE datapath: compiled (default) or boxed interpreter"

(* --engine selects the backend through the registry; "auto" defers to
   Engines.select per workload. Unknown names exit 2 listing the valid
   values, like the other enum flags. *)
let engine_override ~mode =
  match Dphls_engines.Engines.of_string mode with
  | Ok choice -> choice
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let engine_doc =
  "Engine: auto (fast path when provably safe), systolic, reference or bitpar"

let align_run kernel_spec query reference n_pe vcd_path band_mode band_width
    band_threshold datapath_mode engine_mode overlap =
  let e = find_kernel kernel_spec in
  let id = Registry.id e.packed in
  if List.mem id [ 8; 9; 14 ] then begin
    Printf.eprintf
      "kernel #%d takes %s input; use the examples/ programs for signal and \
       profile workloads\n"
      id e.Dphls_kernels.Catalog.alphabet;
    exit 2
  end;
  let w =
    Workload.of_seqs ~query:(parse_sequence e query)
      ~reference:(parse_sequence e reference)
  in
  let (Registry.Packed (k, p)) = e.packed in
  let k =
    match
      band_override ~mode:band_mode ~width:band_width ~threshold:band_threshold
    with
    | None -> k
    | Some banding -> { k with Kernel.banding }
  in
  let k = datapath_override ~mode:datapath_mode k in
  let choice = engine_override ~mode:engine_mode in
  let metrics = Dphls_obs.Metrics.create () in
  let qry_len, ref_len = Workload.sizes w in
  let engine =
    Dphls_engines.Engines.resolve ~metrics ~qry_len ~ref_len choice k p
  in
  let engine_name = Dphls_engines.Engines.name engine in
  if vcd_path <> None && not (Dphls_engines.Engines.caps engine).capture
  then begin
    Printf.eprintf
      "--vcd needs the systolic engine's capture stream (engine is %s)\n"
      engine_name;
    exit 2
  end;
  let (module E : Dphls_engines.Engine_intf.S) = engine in
  let cfg = Dphls_engines.Engine_intf.config ~n_pe () in
  let trace = Dphls_systolic.Trace.create ~enabled:(vcd_path <> None) in
  let result, stats =
    try
      if E.caps.Dphls_engines.Engine_intf.capture then E.run ~trace cfg k p w
      else E.run cfg k p w
    with Dphls_engines.Engine_intf.Unsupported msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  (match vcd_path with
  | Some path ->
    Dphls_systolic.Vcd.write_file path trace ~n_pe;
    Printf.eprintf "wrote waveform %s\n" path
  | None -> ());
  Printf.printf "kernel      : #%d %s\n" id (Registry.name e.packed);
  (* only non-default requests print the engine line, keeping the
     historical output stable for scripts that parse it *)
  if engine_mode <> "systolic" then
    Printf.printf "engine      : %s%s\n" engine_name
      (match choice with
      | Dphls_engines.Engines.Auto -> " (auto)"
      | Dphls_engines.Engines.Forced _ -> "");
  Printf.printf "score       : %s\n" (Dphls_util.Score.to_string result.Result.score);
  if result.Result.path <> [] then
    Printf.printf "cigar       : %s\n" (Result.cigar result);
  (match result.Result.start_cell with
  | Some c -> Printf.printf "start cell  : (%d,%d)\n" c.Types.row c.Types.col
  | None -> ());
  (match stats with
  | None -> ()
  | Some stats ->
    Printf.printf "cycles      : %d (prologue %d, compute %d, traceback %d)\n"
      stats.Dphls_systolic.Engine.cycles.Dphls_systolic.Engine.total
      stats.Dphls_systolic.Engine.cycles.Dphls_systolic.Engine.prologue
      stats.Dphls_systolic.Engine.cycles.Dphls_systolic.Engine.compute
      stats.Dphls_systolic.Engine.cycles.Dphls_systolic.Engine.traceback;
    if overlap then begin
      let c = stats.Dphls_systolic.Engine.cycles in
      Printf.printf
        "overlapped  : %d steady-state (prologue hidden under a neighbouring \
         alignment's compute recovers %d cycles)\n"
        c.Dphls_systolic.Engine.total_overlapped
        (c.Dphls_systolic.Engine.total - c.Dphls_systolic.Engine.total_overlapped)
    end;
    Printf.printf "PE util     : %.2f over %d PEs\n"
      stats.Dphls_systolic.Engine.utilization n_pe);
  match engine_name with
  | "reference" -> ()
  | "bitpar" ->
    (* score-only engine: certify the score against the canonical golden
       run (same kernel banding, so fixed bands compare like-for-like) *)
    let golden = Dphls_reference.Ref_engine.run k p w in
    Printf.printf "golden check: %s\n"
      (if result.Result.score = golden.Result.score then "score match"
       else "score MISMATCH")
  | _ ->
    let golden = Dphls_reference.Ref_engine.run ~band_pe:n_pe k p w in
    Printf.printf "golden check: %s\n"
      (if Result.equal_alignment result golden then "match" else "MISMATCH")

let align_cmd =
  let kernel =
    Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel id or name")
  in
  let query = Arg.(required & opt (some string) None & info [ "q"; "query" ] ~doc:"Query sequence") in
  let reference =
    Arg.(required & opt (some string) None & info [ "r"; "reference" ] ~doc:"Reference sequence")
  in
  let n_pe = Arg.(value & opt int 32 & info [ "n-pe" ] ~doc:"Processing elements") in
  let vcd =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~doc:"Write a VCD waveform")
  in
  let band = Arg.(value & opt string "kernel" & info [ "band" ] ~doc:band_doc) in
  let band_width =
    Arg.(value & opt int 32 & info [ "band-width" ] ~doc:"Band half-width W")
  in
  let band_threshold =
    Arg.(
      value
      & opt int Banding.default_threshold
      & info [ "band-threshold" ] ~doc:"Adaptive-band score drop threshold")
  in
  let datapath =
    Arg.(value & opt string "compiled" & info [ "datapath" ] ~doc:datapath_doc)
  in
  let engine =
    Arg.(value & opt string "systolic" & info [ "engine" ] ~doc:engine_doc)
  in
  let overlap =
    Arg.(
      value & flag
      & info [ "overlap" ]
          ~doc:
            "Also report the overlapped-prologue cycle total (steady-state \
             batch accounting)")
  in
  Cmd.v
    (Cmd.info "align" ~doc:"Align two sequences on the systolic simulator")
    Term.(
      const align_run $ kernel $ query $ reference $ n_pe $ vcd $ band
      $ band_width $ band_threshold $ datapath $ engine $ overlap)

(* ---- resources ---- *)

let resources_run kernel_spec n_pe n_b n_k max_len =
  let e = find_kernel kernel_spec in
  let cfg = { Dphls_resource.Estimate.n_pe; max_qry = max_len; max_ref = max_len } in
  let u = Dphls_resource.Estimate.full e.packed cfg ~n_b ~n_k in
  let p = Dphls_resource.Device.percent_of Dphls_resource.Device.xcvu9p u in
  Printf.printf "kernel #%d %s on %s, N_PE=%d N_B=%d N_K=%d max_len=%d\n"
    (Registry.id e.packed) (Registry.name e.packed)
    Dphls_resource.Device.xcvu9p.Dphls_resource.Device.name n_pe n_b n_k max_len;
  Printf.printf "LUT  %.2f%%  FF %.2f%%  BRAM %.2f%%  DSP %.3f%%\n"
    (100.0 *. p.Dphls_resource.Device.lut_pct)
    (100.0 *. p.ff_pct) (100.0 *. p.bram_pct) (100.0 *. p.dsp_pct);
  Printf.printf "max clock: %.1f MHz\n"
    (Dphls_resource.Estimate.max_frequency_mhz e.packed);
  Printf.printf "fits device: %b\n"
    (Dphls_resource.Estimate.fits_device e.packed cfg ~n_b ~n_k)

let resources_cmd =
  let kernel =
    Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel id or name")
  in
  let n_pe = Arg.(value & opt int 32 & info [ "n-pe" ] ~doc:"Processing elements") in
  let n_b = Arg.(value & opt int 1 & info [ "n-b" ] ~doc:"Blocks per kernel") in
  let n_k = Arg.(value & opt int 1 & info [ "n-k" ] ~doc:"Kernel channels") in
  let max_len = Arg.(value & opt int 256 & info [ "max-len" ] ~doc:"Max sequence length") in
  Cmd.v
    (Cmd.info "resources" ~doc:"Estimate FPGA resources for a configuration")
    Term.(const resources_run $ kernel $ n_pe $ n_b $ n_k $ max_len)

(* ---- gen ---- *)

let gen_run kind count length error_rate seed output =
  let rng = Dphls_util.Rng.create seed in
  let records =
    match kind with
    | "genome" ->
      [ { Dphls_io.Fasta.id = "genome"; description = "synthetic";
          sequence = Dphls_alphabet.Dna.to_string (Dphls_seqgen.Dna_gen.genome rng length) } ]
    | "reads" ->
      let genome = Dphls_seqgen.Dna_gen.genome rng (max (length * 4) (length + 1)) in
      let profile =
        Dphls_seqgen.Read_sim.scaled Dphls_seqgen.Read_sim.pacbio_30 error_rate
      in
      List.map
        (fun (r : Dphls_seqgen.Read_sim.read) ->
          { Dphls_io.Fasta.id = Printf.sprintf "read%d" r.id;
            description = Printf.sprintf "origin=%d" r.origin;
            sequence = Dphls_alphabet.Dna.to_string r.sequence })
        (Dphls_seqgen.Read_sim.simulate rng ~genome ~profile ~read_length:length
           ~count)
    | "protein" ->
      List.init count (fun i ->
          { Dphls_io.Fasta.id = Printf.sprintf "prot%d" i; description = "";
            sequence =
              Dphls_alphabet.Protein.to_string
                (Dphls_seqgen.Protein_gen.sample rng length) })
    | other ->
      Printf.eprintf "unknown kind %S (genome | reads | protein)\n" other;
      exit 2
  in
  match output with
  | None -> print_string (Dphls_io.Fasta.to_string records)
  | Some path ->
    Dphls_io.Fasta.write_file path records;
    Printf.eprintf "wrote %d records to %s\n" (List.length records) path

let gen_cmd =
  let kind =
    Arg.(value & pos 0 string "reads" & info [] ~docv:"KIND" ~doc:"genome | reads | protein")
  in
  let count = Arg.(value & opt int 10 & info [ "n"; "count" ] ~doc:"Record count") in
  let length = Arg.(value & opt int 256 & info [ "l"; "length" ] ~doc:"Sequence length") in
  let error_rate =
    Arg.(value & opt float 0.1 & info [ "e"; "error" ] ~doc:"Read error rate")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"FASTA file") in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate synthetic FASTA datasets (the paper's workloads)")
    Term.(const gen_run $ kind $ count $ length $ error_rate $ seed $ output)

(* ---- map ---- *)

let map_run reads_path reference_path n_pe =
  let references = Dphls_io.Fasta.read_file reference_path in
  let reads = Dphls_io.Fasta.read_file reads_path in
  if references = [] then begin
    Printf.eprintf "no reference sequences in %s\n" reference_path;
    exit 2
  end;
  let target = List.hd references in
  let reference_b = Dphls_io.Fasta.dna_of_record target in
  let reference = Types.seq_of_bases reference_b in
  let module K7 = Dphls_kernels.K07_semi_global in
  let cfg = Dphls_systolic.Config.create ~n_pe in
  List.iter
    (fun (read : Dphls_io.Fasta.record) ->
      let query_b = Dphls_io.Fasta.dna_of_record read in
      let query = Types.seq_of_bases query_b in
      let w = Workload.of_seqs ~query ~reference in
      let result, _ = Dphls_systolic.Engine.run cfg K7.kernel K7.default w in
      match Alignment_view.first_consumed result with
      | None -> Printf.eprintf "%s: unmapped\n" read.Dphls_io.Fasta.id
      | Some (row0, col0) ->
        let stats =
          Alignment_view.stats ~query ~reference ~start_row:row0 ~start_col:col0
            result.Result.path
        in
        let mapq =
          min 60 (int_of_float (60.0 *. stats.Alignment_view.identity))
        in
        let record =
          Dphls_io.Paf.of_alignment ~query_name:read.Dphls_io.Fasta.id
            ~query_length:(Array.length query_b)
            ~target_name:target.Dphls_io.Fasta.id
            ~target_length:(Array.length reference_b) ~result ~stats ~mapq
        in
        print_endline (Dphls_io.Paf.to_line record))
    reads

let map_cmd =
  let reads =
    Arg.(required & opt (some file) None & info [ "reads" ] ~doc:"FASTA reads file")
  in
  let reference =
    Arg.(required & opt (some file) None & info [ "reference" ] ~doc:"FASTA reference file")
  in
  let n_pe = Arg.(value & opt int 32 & info [ "n-pe" ] ~doc:"Processing elements") in
  Cmd.v
    (Cmd.info "map" ~doc:"Map FASTA reads semi-globally and emit PAF records")
    Term.(const map_run $ reads $ reference $ n_pe)

(* ---- batch ---- *)

let batch_run pairs_path kind_s workers n_pe chunk compare overlap band_mode
    band_width band_threshold datapath_mode engine_mode =
  let datapath =
    match datapath_mode with
    | "compiled" -> Dphls.Align.Compiled
    | "boxed" -> Dphls.Align.Boxed
    | other ->
      Printf.eprintf "unknown datapath %S (compiled | boxed)\n" other;
      exit 2
  in
  let band =
    match
      band_override ~mode:band_mode ~width:band_width ~threshold:band_threshold
    with
    | None | Some None -> None
    | Some (Some b) -> Some b
  in
  let kind =
    try Dphls.Batch.kind_of_string kind_s
    with Invalid_argument _ ->
      Printf.eprintf
        "unknown kind %S (global | global-affine | local | semi-global | \
         protein-local)\n"
        kind_s;
      exit 2
  in
  let engine =
    match engine_mode with
    (* no --engine keeps the historical mapping: --n-pe selects the
       systolic engine, its absence the golden one *)
    | None -> (
      match n_pe with
      | None -> Dphls.Align.Golden
      | Some n -> Dphls.Align.Systolic n)
    | Some mode -> (
      let n = Option.value n_pe ~default:32 in
      match engine_override ~mode with
      | Dphls_engines.Engines.Auto -> Dphls.Align.Auto n
      | Dphls_engines.Engines.Forced e -> (
        match Dphls_engines.Engines.name e with
        | "systolic" -> Dphls.Align.Systolic n
        | "reference" -> Dphls.Align.Golden
        | _ -> Dphls.Align.Bitpar))
  in
  let workers =
    (* default to real parallelism even on boxes that report one core *)
    if workers > 0 then workers
    else max 2 (Domain.recommended_domain_count ())
  in
  print_endline "#idx\tquery\treference\tscore\tcigar\tidentity\tcycles";
  Dphls.Batch.iter_fasta_file ?band ~datapath ~engine ~kind ~workers ~chunk
    ~overlap ~path:pairs_path
    ~f:(fun idx q r (a : Dphls.Align.alignment) ->
      Printf.printf "%d\t%s\t%s\t%d\t%s\t%.4f\t%s\n" idx q.Dphls_io.Fasta.id
        r.Dphls_io.Fasta.id a.Dphls.Align.score a.Dphls.Align.cigar
        a.Dphls.Align.identity
        (match a.Dphls.Align.device_cycles with
        | Some c -> string_of_int c
        | None -> "-"))
    ();
  let read_pairs () =
    Array.of_list
      (List.map
         (fun (q, r) -> (q.Dphls_io.Fasta.sequence, r.Dphls_io.Fasta.sequence))
         (let records = Dphls_io.Fasta.read_file pairs_path in
          let rec pair_up = function
            | [] -> []
            | [ q ] ->
              Printf.eprintf "odd record count (unpaired %s)\n"
                q.Dphls_io.Fasta.id;
              exit 2
            | q :: r :: rest -> (q, r) :: pair_up rest
          in
          pair_up records))
  in
  if overlap then begin
    (* re-run through the overlap-reporting path so the recovered-cycle
       accounting (sequential vs overlapped modeled totals) lands on
       stderr next to the rows *)
    let _results, _stats, b =
      Dphls.Batch.align_all_overlap_report ?band ~datapath ~engine ~kind
        ~workers (read_pairs ())
    in
    let seq = b.Dphls_systolic.Engine.seq_cycles in
    let ov = b.Dphls_systolic.Engine.overlapped_cycles in
    Printf.eprintf
      "overlap      : %d alignments, modeled %d -> %d device cycles (%d \
       hidden, %.1f%%)\n"
      b.Dphls_systolic.Engine.alignments seq ov
      b.Dphls_systolic.Engine.hidden_cycles
      (if seq > 0 then
         100.0 *. float_of_int b.Dphls_systolic.Engine.hidden_cycles
         /. float_of_int seq
       else 0.0)
  end;
  if compare then begin
    (* re-run the whole batch at 1 and [workers] domains to line the
       measured wall clock up against the analytical N_K model *)
    let pairs = read_pairs () in
    let results, stats =
      Dphls.Batch.align_all_report ?band ~datapath ~engine ~kind ~workers pairs
    in
    ignore results;
    let report = stats.Dphls_host.Pool.report in
    Printf.eprintf "workers      : %d\n" workers;
    Printf.eprintf "alignments   : %d\n" report.Dphls_host.Scheduler.jobs;
    Printf.eprintf "makespan     : %.3f ms\n"
      (float_of_int report.Dphls_host.Scheduler.makespan /. 1e6);
    Array.iteri
      (fun i busy ->
        Printf.eprintf "worker %d busy: %.3f ms\n" i (float_of_int busy /. 1e6))
      stats.Dphls_host.Pool.worker_busy_ns;
    List.iter
      (fun (p : Dphls_host.Throughput.scaling_point) ->
        Printf.eprintf
          "scaling      : %d workers, measured %.2fx vs N_K model %.2fx \
           (efficiency %.2f)\n"
          p.Dphls_host.Throughput.workers
          p.Dphls_host.Throughput.measured_speedup
          p.Dphls_host.Throughput.modeled_speedup
          p.Dphls_host.Throughput.efficiency)
      (Dphls.Batch.scaling ?band ~datapath ~engine ~kind ~workers:[ workers ]
         pairs)
  end

let batch_cmd =
  let pairs =
    Arg.(
      required
      & opt (some file) None
      & info [ "pairs" ] ~doc:"FASTA pair file: records 2i and 2i+1 align")
  in
  let kind =
    Arg.(
      value & opt string "global"
      & info [ "kind" ]
          ~doc:"global | global-affine | local | semi-global | protein-local")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~doc:"Worker domains (0 = auto, at least 2)")
  in
  let n_pe =
    Arg.(
      value
      & opt (some int) None
      & info [ "n-pe" ] ~doc:"Run on the systolic engine with this many PEs")
  in
  let chunk =
    Arg.(value & opt int 256 & info [ "chunk" ] ~doc:"Pairs per work chunk")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:"Also report measured vs modeled N_K scaling on stderr")
  in
  let overlap =
    Arg.(
      value & flag
      & info [ "overlap" ]
          ~doc:
            "Pipeline each alignment's prologue under its predecessor's \
             compute (per-worker slices) and report recovered cycles on \
             stderr")
  in
  let band = Arg.(value & opt string "kernel" & info [ "band" ] ~doc:band_doc) in
  let band_width =
    Arg.(value & opt int 32 & info [ "band-width" ] ~doc:"Band half-width W")
  in
  let band_threshold =
    Arg.(
      value
      & opt int Dphls_core.Banding.default_threshold
      & info [ "band-threshold" ] ~doc:"Adaptive-band score drop threshold")
  in
  let datapath =
    Arg.(value & opt string "compiled" & info [ "datapath" ] ~doc:datapath_doc)
  in
  let engine =
    Arg.(value & opt (some string) None & info [ "engine" ] ~doc:engine_doc)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Align a FASTA pair file in parallel across CPU domains")
    Term.(
      const batch_run $ pairs $ kind $ workers $ n_pe $ chunk $ compare
      $ overlap $ band $ band_width $ band_threshold $ datapath $ engine)

(* ---- cosim ---- *)

let cosim_run kernel_spec n_pe trials len vectors =
  let e = find_kernel kernel_spec in
  let (Registry.Packed (k, p)) = e.packed in
  let rng = Dphls_util.Rng.create 2026 in
  let workloads =
    List.init trials (fun _ -> e.Dphls_kernels.Catalog.gen rng ~len)
  in
  let id = Registry.id e.packed in
  let alt_pe =
    match Dphls_kernels.Datapaths.cell_for id with
    | cell, bindings -> Some (Dphls_core.Datapath.eval cell bindings)
    | exception Not_found -> None
  in
  (match vectors with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let report = Dphls_cosim.Cosim.verify ~n_pe ?alt_pe ?vectors k p workloads in
  Format.printf "%a@." Dphls_cosim.Cosim.pp_report report;
  exit (if Dphls_cosim.Cosim.passed report then 0 else 1)

let cosim_cmd =
  let kernel =
    Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel id or name")
  in
  let n_pe = Arg.(value & opt int 16 & info [ "n-pe" ] ~doc:"Processing elements") in
  let trials = Arg.(value & opt int 25 & info [ "trials" ] ~doc:"Workloads to verify") in
  let len = Arg.(value & opt int 128 & info [ "len" ] ~doc:"Workload length") in
  let vectors =
    Arg.(
      value
      & opt (some string) None
      & info [ "vectors" ] ~docv:"DIR"
          ~doc:"Capture one golden-vector (.dpv) file per workload into $(docv)")
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:"Verify golden engine vs systolic engine vs symbolic datapath")
    Term.(const cosim_run $ kernel $ n_pe $ trials $ len $ vectors)

(* ---- vectors ---- *)

module Vectors = Dphls_vectors

let vectors_gen_run kernel_spec corpus_dir output n_pe len seed band_mode
    band_width band_threshold =
  match corpus_dir with
  | Some dir ->
    (* Regenerate the standard committed corpus. *)
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let failed = ref false in
    List.iter
      (fun spec ->
        match Vectors.Harness.generate spec with
        | Ok (v, name) ->
          let path = Filename.concat dir name in
          Vectors.Codec.write_file path v;
          Printf.printf "wrote %s\n" path
        | Error msg ->
          Printf.eprintf "dphls vectors gen: %s\n" msg;
          failed := true)
      Vectors.Harness.corpus;
    if !failed then exit 2
  | None -> (
    let kernel_spec =
      match kernel_spec with
      | Some s -> s
      | None ->
        Printf.eprintf "dphls vectors gen: need --kernel or --corpus DIR\n";
        exit 2
    in
    let e = find_kernel kernel_spec in
    let band =
      match
        band_override ~mode:band_mode ~width:band_width
          ~threshold:band_threshold
      with
      | None -> None
      | Some banding -> Some (Vectors.Stream.band_spec_of_banding banding)
    in
    let spec =
      {
        Vectors.Harness.kernel_id = Registry.id e.packed;
        n_pe;
        len;
        band;
        seed;
      }
    in
    match Vectors.Harness.generate spec with
    | Error msg ->
      Printf.eprintf "dphls vectors gen: %s\n" msg;
      exit 2
    | Ok (v, default_name) ->
      let path = Option.value output ~default:default_name in
      Vectors.Codec.write_file path v;
      Printf.printf "wrote %s\n" path)

let vectors_gen_cmd =
  let kernel =
    Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel id or name")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Regenerate the standard committed corpus into $(docv)")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file")
  in
  let n_pe = Arg.(value & opt int 4 & info [ "n-pe" ] ~doc:"Processing elements") in
  let len = Arg.(value & opt int 32 & info [ "len" ] ~doc:"Workload length") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload RNG seed") in
  let band = Arg.(value & opt string "kernel" & info [ "band" ] ~doc:band_doc) in
  let band_width =
    Arg.(value & opt int 16 & info [ "band-width" ] ~doc:"Band half-width")
  in
  let band_threshold =
    Arg.(
      value
      & opt int Banding.default_threshold
      & info [ "band-threshold" ] ~doc:"Adaptive-band score drop threshold")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate golden vector files")
    Term.(
      const vectors_gen_run $ kernel $ corpus $ output $ n_pe $ len $ seed
      $ band $ band_width $ band_threshold)

let vectors_check_run overlap files =
  if files = [] then begin
    Printf.eprintf "dphls vectors check: no vector files given\n";
    exit 2
  end;
  let load_failed = ref false and diverged = ref false in
  List.iter
    (fun path ->
      match Vectors.Harness.check_file ~overlap path with
      | Ok o ->
        Printf.printf "%s: ok (%d cells, %d windows, %d replayed)\n" path
          o.Vectors.Harness.o_cells o.Vectors.Harness.o_windows
          o.Vectors.Harness.o_replayed
      | Error msg ->
        (* Distinguish unreadable/corrupt files (exit 2) from vectors
           that load but diverge from this build (exit 1). *)
        (match Vectors.Codec.read_file path with
        | Error _ -> load_failed := true
        | Ok _ -> diverged := true);
        Printf.eprintf "%s: FAIL: %s\n" path msg)
    files;
  if !load_failed then exit 2 else if !diverged then exit 1

let vectors_check_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Vector files")
  in
  let overlap =
    Arg.(
      value & flag
      & info [ "overlap" ]
          ~doc:
            "Re-run each vector through the overlapped staged engine \
             instead of the sequential one; the recorded stream must \
             still match bit for bit")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify vector files against the current build (re-run, replay \
          both datapaths); non-zero exit on divergence (1) or unreadable \
          files (2)")
    Term.(const vectors_check_run $ overlap $ files)

let vectors_regen_run out_dir files =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let failed = ref false in
  List.iter
    (fun path ->
      match Vectors.Codec.read_file path with
      | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        failed := true
      | Ok v -> (
        let h = v.Vectors.Stream.header in
        match find_kernel (string_of_int h.Vectors.Stream.kernel_id) with
        | exception Not_found ->
          Printf.eprintf "%s: unknown kernel id %d\n" path
            h.Vectors.Stream.kernel_id;
          failed := true
        | e ->
          let (Registry.Packed (k, p)) = e.packed in
          let k =
            {
              k with
              Kernel.banding =
                Vectors.Stream.banding_of_spec h.Vectors.Stream.band;
            }
          in
          let w =
            Workload.of_seqs ~query:h.Vectors.Stream.query
              ~reference:h.Vectors.Stream.reference
          in
          let regen, _ =
            Vectors.Capture.systolic k p ~n_pe:h.Vectors.Stream.n_pe w
          in
          let dst = Filename.concat out_dir (Filename.basename path) in
          Vectors.Codec.write_file dst regen;
          Printf.printf "wrote %s\n" dst))
    files;
  if !failed then exit 2

let vectors_regen_cmd =
  let out_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Vector files")
  in
  Cmd.v
    (Cmd.info "regen"
       ~doc:
         "Re-record vectors from their embedded workloads on this build \
          (what CI uploads when the drift gate fails)")
    Term.(const vectors_regen_run $ out_dir $ files)

let vectors_diff_run file_a file_b =
  match (Vectors.Codec.read_file file_a, Vectors.Codec.read_file file_b) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "dphls vectors diff: %s\n" msg;
    exit 2
  | Ok a, Ok b -> (
    match Vectors.Stream.diff ~expected:a ~actual:b with
    | None -> Printf.printf "vectors agree\n"
    | Some d ->
      Printf.printf "first divergence: %s\n" (Vectors.Stream.describe d);
      exit 1)

let vectors_diff_cmd =
  let file_a =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EXPECTED")
  in
  let file_b =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"ACTUAL")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"First divergence between two vector files")
    Term.(const vectors_diff_run $ file_a $ file_b)

let vectors_cmd =
  Cmd.group
    (Cmd.info "vectors"
       ~doc:
         "Golden-vector harness: record, check and diff per-wavefront \
          engine streams")
    [ vectors_gen_cmd; vectors_check_cmd; vectors_regen_cmd; vectors_diff_cmd ]

(* ---- rtl ---- *)

let rtl_run kernel_spec n_pe n_b n_k max_len output =
  let e = find_kernel kernel_spec in
  let id = Registry.id e.packed in
  let cell, bindings = Dphls_kernels.Datapaths.cell_for id in
  let (Registry.Packed (k, _)) = e.packed in
  let design =
    Dphls_rtl.Emit.emit ~kernel_name:(Registry.name e.packed) ~cell ~bindings
      ~n_layers:k.Kernel.n_layers ~score_bits:k.Kernel.score_bits
      ~tb_bits:k.Kernel.tb_bits
      ~char_bits:(max 1 (k.Kernel.traits.Traits.char_bits / max 1 (Dphls_rtl.Pe_gen.char_arity cell)))
      ~n_pe ~n_b ~n_k ~max_qry:max_len ~max_ref:max_len
  in
  let text = Dphls_rtl.Emit.to_text design in
  (match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.eprintf "wrote %s (%d bytes)\n" path (String.length text));
  Printf.eprintf
    "PE datapath: %d adders, %d multipliers, %d comparators, %d lookups; TB depth %d\n"
    design.Dphls_rtl.Emit.ops.Datapath.adders
    design.Dphls_rtl.Emit.ops.Datapath.multipliers
    design.Dphls_rtl.Emit.ops.Datapath.comparators
    design.Dphls_rtl.Emit.ops.Datapath.lookups design.Dphls_rtl.Emit.tb_depth

let rtl_cmd =
  let kernel =
    Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel id or name")
  in
  let n_pe = Arg.(value & opt int 32 & info [ "n-pe" ] ~doc:"Processing elements") in
  let n_b = Arg.(value & opt int 1 & info [ "n-b" ] ~doc:"Blocks per kernel") in
  let n_k = Arg.(value & opt int 1 & info [ "n-k" ] ~doc:"Kernel channels") in
  let max_len = Arg.(value & opt int 256 & info [ "max-len" ] ~doc:"Max sequence length") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output .v file")
  in
  Cmd.v
    (Cmd.info "rtl" ~doc:"Emit structural Verilog for a kernel's systolic design")
    Term.(const rtl_run $ kernel $ n_pe $ n_b $ n_k $ max_len $ output)

(* ---- profile ---- *)

let profile_run kernel_spec n_pe trials len band_mode band_width band_threshold
    workers json trace_path engine_mode overlap =
  let e = find_kernel kernel_spec in
  let (Registry.Packed (k, p)) = e.packed in
  let k =
    match
      band_override ~mode:band_mode ~width:band_width ~threshold:band_threshold
    with
    | None -> k
    | Some banding -> { k with Kernel.banding }
  in
  if trials < 1 then begin
    Printf.eprintf "profile: trials must be >= 1\n";
    exit 2
  end;
  let choice = engine_override ~mode:engine_mode in
  let metrics = Dphls_obs.Metrics.create () in
  let tracer = Dphls_obs.Tracer.create () in
  let cfg = Dphls_engines.Engine_intf.config ~n_pe () in
  (* auto re-decides per workload (each decision bumps a dispatch
     counter into [sink]); a forced engine is a constant *)
  let select_for ?sink w =
    match choice with
    | Dphls_engines.Engines.Forced e -> e
    | Dphls_engines.Engines.Auto ->
      let qry_len, ref_len = Workload.sizes w in
      Dphls_engines.Engines.select ?metrics:sink ~qry_len ~ref_len k p
  in
  let run_one ?sink ?metrics ?tracer w =
    let (module E : Dphls_engines.Engine_intf.S) = select_for ?sink w in
    try ignore (E.run ?metrics ?tracer cfg k p w)
    with Dphls_engines.Engine_intf.Unsupported msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let rng = Dphls_util.Rng.create 2026 in
  let workloads =
    Array.init trials (fun _ -> e.Dphls_kernels.Catalog.gen rng ~len)
  in
  (* Sequential phase: engine counters and phase spans. The closed-form
     expected cell count is summed per workload because generated
     lengths can differ from [len] for some kernels. With [--overlap]
     the same workloads go through the staged batch instead, so the
     exported trace shows alignment i+1's prologue span (tid 1) running
     under alignment i's compute span. *)
  let expected_cells = ref 0 in
  Array.iter
    (fun w ->
      expected_cells :=
        !expected_cells
        + Banding.cells_in_band k.Kernel.banding
            ~qry_len:(Array.length w.Workload.query)
            ~ref_len:(Array.length w.Workload.reference))
    workloads;
  (if overlap then
     match choice with
     | Dphls_engines.Engines.Forced e
       when Dphls_engines.Engines.name e = "systolic" ->
       let (module E : Dphls_engines.Engine_intf.S) = e in
       ignore (E.run_batch ~overlap:true ~metrics ~tracer cfg k p workloads)
     | _ ->
       Printf.eprintf "--overlap requires --engine systolic\n";
       exit 2
   else
     Array.iter (fun w -> run_one ~sink:metrics ~metrics ~tracer w) workloads);
  (* Optional pool phase: re-run the same workloads as a parallel batch
     to exercise the pool's task/steal/idle counters and per-worker
     chunk spans. Engine metrics stay out of the worker tasks — the
     counter sink is not domain-safe (see Dphls_host.Pool.run). *)
  if workers > 0 then
    Dphls_host.Pool.with_pool ~workers (fun pool ->
        let _, _ =
          Dphls_host.Pool.run ~metrics ~tracer pool
            (* no sink in the tasks: the counter sink is not domain-safe,
               so auto decisions inside workers go unrecorded *)
            (fun i -> run_one workloads.(i))
            trials
        in
        ());
  let summary = Dphls_obs.Summary.build ~metrics ~tracer () in
  if json then print_endline (Dphls_obs.Summary.to_json summary)
  else begin
    Printf.printf "kernel      : #%d %s (n_pe=%d, %d trial%s, len %d)\n"
      (Registry.id e.packed) (Registry.name e.packed) n_pe trials
      (if trials = 1 then "" else "s")
      len;
    print_string (Dphls_obs.Summary.to_text summary)
  end;
  (match trace_path with
  | Some path ->
    Dphls_obs.Chrome.write_file path tracer;
    Printf.eprintf
      "wrote %s (%d spans) — load in Perfetto (ui.perfetto.dev) or \
       chrome://tracing\n"
      path
      (Dphls_obs.Tracer.count tracer)
  | None -> ());
  (* The sequential phase computes every in-band cell exactly once, so
     the counter must equal the closed form for static bands; an
     adaptive band's realized window is only bounded by the envelope. *)
  let cells = Dphls_obs.Metrics.get metrics Dphls_obs.Counter.Cells_evaluated in
  match k.Kernel.banding with
  | Some (Banding.Adaptive _) ->
    Printf.eprintf "cells check : skipped (adaptive band: %d <= envelope %d)\n"
      cells !expected_cells;
    if cells > !expected_cells then exit 1
  | Some (Banding.Fixed _) | None ->
    if cells = !expected_cells then
      Printf.eprintf "cells check : match (%d cells)\n" cells
    else begin
      Printf.eprintf "cells check : MISMATCH (counter %d, closed form %d)\n"
        cells !expected_cells;
      exit 1
    end

let profile_cmd =
  let kernel =
    Arg.(
      required
      & opt (some string) None
      & info [ "k"; "kernel" ] ~doc:"Kernel id or name")
  in
  let n_pe = Arg.(value & opt int 32 & info [ "n-pe" ] ~doc:"Processing elements") in
  let trials =
    Arg.(value & opt int 8 & info [ "trials" ] ~doc:"Workloads to profile")
  in
  let len = Arg.(value & opt int 128 & info [ "len" ] ~doc:"Workload length") in
  let band = Arg.(value & opt string "kernel" & info [ "band" ] ~doc:band_doc) in
  let band_width =
    Arg.(value & opt int 32 & info [ "band-width" ] ~doc:"Band half-width W")
  in
  let band_threshold =
    Arg.(
      value
      & opt int Banding.default_threshold
      & info [ "band-threshold" ] ~doc:"Adaptive-band score drop threshold")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ]
          ~doc:"Also run a pool batch phase on this many domains (0 = skip)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"JSON summary on stdout")
  in
  let trace =
    Arg.(
      value
      & opt (some string) (Some "profile.trace.json")
      & info [ "trace" ]
          ~doc:"Chrome trace_event output file (Perfetto-loadable)")
  in
  let engine =
    Arg.(value & opt string "systolic" & info [ "engine" ] ~doc:engine_doc)
  in
  let overlap =
    Arg.(
      value & flag
      & info [ "overlap" ]
          ~doc:
            "Profile the overlapped staged batch: prologue spans land on a \
             second track under the previous alignment's compute span")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run workloads with performance counters and span tracing enabled; \
          print a counter/latency summary and export a Chrome trace")
    Term.(
      const profile_run $ kernel $ n_pe $ trials $ len $ band $ band_width
      $ band_threshold $ workers $ json $ trace $ engine $ overlap)

(* ---- experiment ---- *)

let experiment_run name quick =
  match name with
  | None -> Dphls_experiments.Runner.run_all ~quick ()
  | Some n -> (
    try Dphls_experiments.Runner.run_one ~quick n
    with Not_found ->
      Printf.eprintf "unknown experiment %S; available: %s\n" n
        (String.concat ", " Dphls_experiments.Runner.names);
      exit 2)

let experiment_cmd =
  let exp_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Experiment name")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sample counts") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run paper experiments (all when no name given)")
    Term.(const experiment_run $ exp_name $ quick)

(* ---- serve ---- *)

module Serve = Dphls_serve.Server
module Serve_proto = Dphls_serve.Proto

let serve_run socket max_conns queue_depth batch_max cache_capacity max_len
    deadline_ms n_pe workers slo_p99_ms check json trace_path =
  let metrics = Dphls_obs.Metrics.create () in
  let tracer =
    match trace_path with
    | Some _ -> Dphls_obs.Tracer.create ()
    | None -> Dphls_obs.Tracer.disabled
  in
  let cfg =
    {
      (Serve.default_config ()) with
      Serve.queue_depth;
      batch_max;
      cache_capacity;
      max_seq_len = max_len;
      default_deadline_ms = (if deadline_ms > 0.0 then Some deadline_ms else None);
      n_pe;
      workers;
      slo_p99_ms;
      metrics;
      tracer;
    }
  in
  let server = Serve.create cfg in
  let respond oc responses =
    List.iter
      (fun r ->
        output_string oc (Serve_proto.response_line r);
        output_char oc '\n')
      responses;
    flush oc
  in
  (* one client session: a response line per request line, everything
     still queued flushed (in admission order) at EOF *)
  let session ic oc =
    let rec loop () =
      match input_line ic with
      | line ->
        if String.trim line <> "" then respond oc (Serve.submit server line);
        loop ()
      | exception End_of_file -> respond oc (Serve.drain server)
    in
    loop ()
  in
  (match socket with
  | None -> session stdin stdout
  | Some path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 8;
    Printf.eprintf "dphls serve: listening on %s\n%!" path;
    let conns = ref 0 in
    while max_conns = 0 || !conns < max_conns do
      let fd, _ = Unix.accept sock in
      incr conns;
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try session ic oc with Sys_error _ | Unix.Unix_error _ -> ());
      close_out_noerr oc
    done;
    Unix.close sock;
    (try Unix.unlink path with Unix.Unix_error _ -> ()));
  let s = Serve.summary server in
  if json then prerr_endline (Serve.summary_to_json s)
  else prerr_string (Serve.summary_to_text s);
  (match trace_path with
  | Some p ->
    Dphls_obs.Chrome.write_file p ~process_name:"dphls serve" tracer;
    Printf.eprintf "trace written to %s — load it in Perfetto\n" p
  | None -> ());
  Serve.close server;
  if check && not s.Serve.slo_ok then exit 1

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket instead of stdin/stdout \
             (connections are served sequentially)")
  in
  let max_conns =
    Arg.(
      value & opt int 0
      & info [ "max-conns" ]
          ~doc:"With --socket: exit after this many connections (0 = forever)")
  in
  let queue_depth =
    Arg.(
      value & opt int 256
      & info [ "queue-depth" ]
          ~doc:
            "Bounded pending-request queue per (kernel, band, engine) group; \
             a request beyond it is answered $(b,overloaded)")
  in
  let batch_max =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~doc:"Coalesce up to this many requests per engine batch")
  in
  let cache_capacity =
    Arg.(
      value & opt int 4096
      & info [ "cache" ] ~doc:"Result-cache entries, LRU-evicted (0 disables)")
  in
  let max_len =
    Arg.(
      value & opt int 4096
      & info [ "max-len" ]
          ~doc:"Per-sequence length cap; above it is $(b,oversized)")
  in
  let deadline_ms =
    Arg.(
      value & opt float 0.0
      & info [ "deadline-ms" ]
          ~doc:
            "Default per-request deadline in ms (0 = none); requests may \
             override with their own $(b,deadline_ms) field")
  in
  let n_pe =
    Arg.(value & opt int 32 & info [ "n-pe" ] ~doc:"Processing elements")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ]
          ~doc:"Slice large batches across this many worker domains")
  in
  let slo_p99_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-p99-ms" ]
          ~doc:
            "Latency objective: report p99 attainment in the shutdown summary")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Exit non-zero if the p99 SLO was violated")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the shutdown summary as JSON (stderr)")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Export admit/compute/request spans as a Chrome trace_event file \
             (Perfetto-loadable)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent alignment service: one JSON request per line on \
          stdin (or a Unix socket), one JSON response per line out, with \
          dynamic batching, bounded queues, a result cache, deadlines and an \
          SLO-gated shutdown summary")
    Term.(
      const serve_run $ socket $ max_conns $ queue_depth $ batch_max
      $ cache_capacity $ max_len $ deadline_ms $ n_pe $ workers $ slo_p99_ms
      $ check $ json $ trace)

(* ---- check ---- *)

let kernel_datapath (e : Dphls_kernels.Catalog.entry) =
  try Some (Dphls_kernels.Datapaths.cell_for (Dphls_core.Registry.id e.packed))
  with Not_found -> None

let check_entry ?host ~max_len (e : Dphls_kernels.Catalog.entry) =
  let max_len =
    match max_len with Some l -> l | None -> e.Dphls_kernels.Catalog.max_len
  in
  let rng = Dphls_util.Rng.create 7 in
  let sample = e.gen rng ~len:(min 64 max_len) in
  let chars = Dphls_analysis.Check.chars_of_workload sample in
  Dphls_analysis.Check.run ~n_pe:e.optimal.n_pe ?datapath:(kernel_datapath e)
    ?host ~max_len ~chars e.packed

let explain_run spec what =
  let e = find_kernel spec in
  let (Dphls_core.Registry.Packed (k, _)) = e.Dphls_kernels.Catalog.packed in
  match kernel_datapath e with
  | None ->
    Printf.eprintf
      "dphls check: kernel #%d %s has no symbolic datapath to explain\n"
      k.Dphls_core.Kernel.id k.Dphls_core.Kernel.name;
    exit 2
  | Some (cell, bindings) ->
    let ppf = Format.std_formatter in
    Format.fprintf ppf "kernel #%d %s — %s derivation@\n"
      k.Dphls_core.Kernel.id k.Dphls_core.Kernel.name
      (match what with
      | `Depend -> "dependence footprint"
      | `Ii -> "recurrence-II"
      | `Fastpath -> "fast-path eligibility");
    (match what with
    | `Depend ->
      Dphls_analysis.Depend.explain ppf
        (Dphls_analysis.Depend.analyze cell
           ~n_layers:k.Dphls_core.Kernel.n_layers)
    | `Ii -> (
      match Dphls_analysis.Ii.analyze cell bindings with
      | Ok ii ->
        Dphls_analysis.Ii.explain ppf ii ~traits:k.Dphls_core.Kernel.traits
      | Error msg ->
        Format.fprintf ppf "datapath does not compile: %s@\n" msg;
        Format.pp_print_flush ppf ();
        exit 1)
    | `Fastpath ->
      Dphls_analysis.Fastpath.explain ppf
        (Dphls_analysis.Fastpath.classify cell bindings));
    Format.pp_print_flush ppf ()

let check_run kernel_spec all max_len json explain workers shared_metrics =
  match explain with
  | Some what -> (
    match kernel_spec with
    | Some spec -> explain_run spec what
    | None ->
      Printf.eprintf "--explain needs --kernel ID\n";
      exit 2)
  | None ->
  let entries =
    match (kernel_spec, all) with
    | Some spec, _ -> [ find_kernel spec ]
    | None, true -> Dphls_kernels.Catalog.all
    | None, false ->
      Printf.eprintf "pass --kernel ID or --all\n";
      exit 2
  in
  let host =
    Option.map
      (fun w ->
        {
          Dphls_analysis.Lint.workers = w;
          shared_metrics_sink = shared_metrics;
        })
      workers
  in
  let reports = List.map (check_entry ?host ~max_len) entries in
  if json then print_endline (Dphls_analysis.Report.list_to_json reports)
  else
    List.iter
      (fun r -> Format.printf "%a@." Dphls_analysis.Report.pp r)
      reports;
  let errors =
    List.fold_left (fun acc r -> acc + Dphls_analysis.Report.errors r) 0 reports
  in
  if errors > 0 then begin
    if not json then
      Printf.eprintf "dphls check: %d error finding%s\n" errors
        (if errors = 1 then "" else "s");
    exit 1
  end

let check_cmd =
  let kernel =
    Arg.(
      value
      & opt (some string) None
      & info [ "k"; "kernel" ] ~doc:"Kernel id or name")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Check the whole catalog") in
  let max_len =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-len" ]
          ~doc:"Workload length bound to verify (default: catalog max_len)")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"JSON report") in
  let explain =
    Arg.(
      value
      & opt
          (some (enum [ ("depend", `Depend); ("ii", `Ii); ("fastpath", `Fastpath) ]))
          None
      & info [ "explain" ] ~docv:"PASS"
          ~doc:
            "Print the named pass's full derivation for one kernel (requires \
             $(b,--kernel)): $(b,depend), $(b,ii) or $(b,fastpath)")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ]
          ~doc:
            "Host worker-domain count to lint the run configuration against \
             (see --shared-metrics)")
  in
  let shared_metrics =
    Arg.(
      value
      & flag
      & info [ "shared-metrics" ]
          ~doc:
            "Declare that all workers would write one Dphls_obs.Metrics sink; \
             with --workers > 1 this is flagged (sinks are per-domain)")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze kernels before synthesis (width/overflow, \
          traceback FSM, dependence stencil, recurrence II, bit-parallel \
          fast path, banding/parallelism/domain lint); non-zero exit on \
          error findings")
    Term.(
      const check_run $ kernel $ all $ max_len $ json $ explain $ workers
      $ shared_metrics)

let () =
  let info =
    Cmd.info "dphls" ~version:"1.0.0"
      ~doc:"OCaml reproduction of the DP-HLS framework (HPCA 2026)"
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; align_cmd; batch_cmd; gen_cmd; map_cmd; cosim_cmd;
         resources_cmd; rtl_cmd; experiment_cmd; check_cmd; profile_cmd;
         vectors_cmd; serve_cmd ]))
