(* Benchmark harness: one Bechamel test per paper table/figure measuring
   the computational core behind that artifact, followed by the full
   experiment tables (the regenerated Table 2 / Fig 3-6 / §7.5 / tiling
   numbers recorded in EXPERIMENTS.md).

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Dphls_core

let seed = 42
let bench_len = 64

(* Pre-generated workloads so the benches measure engines, not RNG. *)
let workload_for id =
  let e = Dphls_kernels.Catalog.find id in
  let rng = Dphls_util.Rng.create (seed + id) in
  (e, e.Dphls_kernels.Catalog.gen rng ~len:bench_len)

let systolic_run ?(n_pe = 16) (e : Dphls_kernels.Catalog.entry) w () =
  let (Registry.Packed (k, p)) = e.packed in
  let cfg = Dphls_systolic.Config.create ~n_pe in
  ignore (Dphls_systolic.Engine.run cfg k p w)

(* Table 2: the per-kernel systolic cycle measurement behind every
   throughput row — all 15 kernels once. *)
let test_table2 =
  let runs = List.map (fun id -> workload_for id) Dphls_kernels.Catalog.ids in
  Test.make ~name:"table2:15-kernel-systolic-pass"
    (Staged.stage (fun () -> List.iter (fun (e, w) -> systolic_run e w ()) runs))

(* Fig 3: scaling measurement — kernel #1 at two N_PE points. *)
let test_fig3 =
  let e, w = workload_for 1 in
  Test.make ~name:"fig3:npe-8-vs-32"
    (Staged.stage (fun () ->
         systolic_run ~n_pe:8 e w ();
         systolic_run ~n_pe:32 e w ()))

(* Fig 4: DP-HLS kernel #2 vs the GACT RTL cycle model. *)
let test_fig4 =
  let e, w = workload_for 2 in
  Test.make ~name:"fig4:dphls2-vs-gact"
    (Staged.stage (fun () ->
         systolic_run e w ();
         ignore
           (Dphls_baselines.Gact_rtl.cycles ~n_pe:16 ~qry_len:bench_len
              ~ref_len:bench_len ~tb_steps:bench_len)))

(* Fig 5: the N_PE sweep body for kernel #2. *)
let test_fig5 =
  let e, w = workload_for 2 in
  Test.make ~name:"fig5:gact-scaling-point"
    (Staged.stage (fun () -> systolic_run ~n_pe:32 e w ()))

(* Fig 6: the three CPU baseline scoring kernels. *)
let test_fig6 =
  let rng = Dphls_util.Rng.create seed in
  let q = Dphls_alphabet.Dna.random rng 128 and r = Dphls_alphabet.Dna.random rng 128 in
  let pq = Dphls_alphabet.Protein.random rng 128
  and pr = Dphls_alphabet.Protein.random rng 128 in
  let scoring =
    Dphls_baselines.Seqan_like.dna_scoring ~match_:2 ~mismatch:(-2)
      ~gap:(Dphls_baselines.Seqan_like.Affine { open_ = -3; extend = -1 })
      ~mode:Dphls_baselines.Seqan_like.Global
  in
  Test.make ~name:"fig6:cpu-baselines"
    (Staged.stage (fun () ->
         ignore (Dphls_baselines.Seqan_like.score scoring ~query:q ~reference:r);
         ignore
           (Dphls_baselines.Minimap2_like.score Dphls_baselines.Minimap2_like.default
              ~query:q ~reference:r);
         ignore (Dphls_baselines.Emboss_like.blosum62_score ~query:pq ~reference:pr)))

(* §7.5: kernel #3 vs the Vitis HLS baseline model. *)
let test_hls =
  let e, w = workload_for 3 in
  Test.make ~name:"sec7_5:dphls3-vs-vitis"
    (Staged.stage (fun () ->
         systolic_run e w ();
         ignore
           (Dphls_baselines.Vitis_hls_model.cycles_per_alignment ~n_pe:16
              ~qry_len:bench_len ~ref_len:bench_len ~tb_steps:bench_len)))

(* Tiling: one long-read tiled alignment. *)
let test_tiling =
  let rng = Dphls_util.Rng.create seed in
  let genome = Dphls_seqgen.Dna_gen.genome rng 1024 in
  let read =
    List.hd
      (Dphls_seqgen.Read_sim.simulate rng ~genome
         ~profile:(Dphls_seqgen.Read_sim.scaled Dphls_seqgen.Read_sim.pacbio_30 0.1)
         ~read_length:512 ~count:1)
  in
  let qb, rb = Dphls_seqgen.Read_sim.pair_for_alignment read in
  let query = Types.seq_of_bases qb and reference = Types.seq_of_bases rb in
  let p = Dphls_kernels.K02_global_affine.default in
  let run_tile =
    Dphls_engines.Engines.(tile_runner systolic)
      (Dphls_engines.Engine_intf.config ~n_pe:16 ())
      Dphls_kernels.K02_global_affine.kernel p
  in
  Test.make ~name:"tiling:512b-read"
    (Staged.stage (fun () ->
         ignore
           (Dphls_tiling.Tiling.align
              { Dphls_tiling.Tiling.tile = 128; overlap = 16 }
              ~run:run_tile ~query ~reference)))

(* §7.2: a fully traced systolic pass (the invariant-check substrate). *)
let test_trace =
  let e, w = workload_for 9 in
  Test.make ~name:"sec7_2:traced-systolic-pass"
    (Staged.stage (fun () ->
         let (Registry.Packed (k, p)) = e.packed in
         let trace = Dphls_systolic.Trace.create ~enabled:true in
         let cfg = Dphls_systolic.Config.create ~n_pe:8 in
         ignore (Dphls_systolic.Engine.run ~trace cfg k p w)))

(* Batch runtime: the same pair batch through the multicore pool at one
   worker and at the machine's N_K analog, so the report shows what the
   real (not modeled) N_K parallelism buys on this host. *)
let test_batch =
  let rng = Dphls_util.Rng.create seed in
  let pairs =
    Array.init 16 (fun _ ->
        ( Dphls_alphabet.Dna.to_string (Dphls_alphabet.Dna.random rng 48),
          Dphls_alphabet.Dna.to_string (Dphls_alphabet.Dna.random rng 48) ))
  in
  let n_workers = max 2 (Domain.recommended_domain_count ()) in
  Test.make_grouped ~name:"batch:workers-1-vs-N"
    [
      Test.make ~name:"workers-1"
        (Staged.stage (fun () ->
             ignore (Dphls.Batch.align_all ~workers:1 pairs)));
      Test.make
        ~name:(Printf.sprintf "workers-%d" n_workers)
        (Staged.stage (fun () ->
             ignore (Dphls.Batch.align_all ~workers:n_workers pairs)));
    ]

(* RTL emission: generate and lint one full design. *)
let test_rtl =
  let e = Dphls_kernels.Catalog.find 2 in
  let cell, bindings = Dphls_kernels.Datapaths.cell_for 2 in
  let (Registry.Packed (k, _)) = e.Dphls_kernels.Catalog.packed in
  Test.make ~name:"rtl:emit-and-lint-kernel2"
    (Staged.stage (fun () ->
         let d =
           Dphls_rtl.Emit.emit ~kernel_name:"k2" ~cell ~bindings
             ~n_layers:k.Kernel.n_layers ~score_bits:k.Kernel.score_bits
             ~tb_bits:k.Kernel.tb_bits ~char_bits:2 ~n_pe:16 ~n_b:2 ~n_k:1
             ~max_qry:256 ~max_ref:256
         in
         assert (Dphls_rtl.Lint.check_design d = [])))

let tests =
  Test.make_grouped ~name:"dphls"
    [
      test_table2; test_fig3; test_fig4; test_fig5; test_fig6; test_hls;
      test_tiling; test_trace; test_batch; test_rtl;
    ]

let run_benchmarks () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Dphls_util.Pretty.section "Bechamel micro-benchmarks (ns per run)";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%.0f" est
        | Some _ | None -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-42s %14s ns/run\n" name est)
    (List.sort compare !rows)

(* ---- banding comparison: none vs fixed vs adaptive (BENCH_2.json) ----

   A long-read-style workload (simulated noisy read vs its source
   window) on kernel #11's recurrence under the three band modes at
   equal half-width, reporting cells computed, device cycles and host
   wall-clock per mode. *)
let banding_bench ?(len = 512) () =
  let module K11 = Dphls_kernels.K11_banded_global_linear in
  let width = 32 and n_pe = 32 in
  let rng = Dphls_util.Rng.create seed in
  let w = K11.gen_drift rng ~len in
  let total_cells =
    Array.length w.Workload.query * Array.length w.Workload.reference
  in
  let cfg = Dphls_systolic.Config.create ~n_pe in
  let p = K11.default in
  let run_mode mode kernel ~width ~threshold =
    let result, stats = Dphls_systolic.Engine.run cfg kernel p w in
    let reps = 3 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Dphls_systolic.Engine.run cfg kernel p w)
    done;
    let wall_ns = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e9 in
    {
      Dphls_host.Throughput.mode;
      width;
      threshold;
      score = result.Result.score;
      cells_computed = stats.Dphls_systolic.Engine.pe_fires;
      total_cells;
      device_cycles = stats.Dphls_systolic.Engine.cycles.Dphls_systolic.Engine.total;
      wall_ns;
    }
  in
  let runs =
    [
      run_mode "none"
        { K11.kernel with Kernel.banding = None }
        ~width:None ~threshold:None;
      run_mode "fixed" (K11.kernel_with ~bandwidth:width) ~width:(Some width)
        ~threshold:None;
      run_mode "adaptive"
        (K11.adaptive_with ~bandwidth:width ~threshold:Banding.default_threshold)
        ~width:(Some width)
        ~threshold:(Some Banding.default_threshold);
    ]
  in
  Dphls_util.Pretty.print_table
    ~title:
      (Printf.sprintf
         "Banding modes on a %d-base noisy read (kernel #11, N_PE=%d, W=%d)"
         len n_pe width)
    ~header:[ "mode"; "score"; "cells"; "of full"; "cycles"; "wall us" ]
    (List.map
       (fun (r : Dphls_host.Throughput.band_run) ->
         [
           r.mode;
           string_of_int r.score;
           string_of_int r.cells_computed;
           Printf.sprintf "%.1f%%"
             (100.0 *. Dphls_host.Throughput.cells_fraction r);
           string_of_int r.device_cycles;
           Printf.sprintf "%.1f" (r.wall_ns /. 1e3);
         ])
       runs);
  (match runs with
  | [ _; fixed; adaptive ] ->
    Printf.printf
      "adaptive computes %d of the fixed band's %d cells (%.1f%% saved)\n"
      adaptive.cells_computed fixed.cells_computed
      (100.0
      *. (1.0
         -. float_of_int adaptive.cells_computed
            /. float_of_int (max 1 fixed.cells_computed)))
  | _ -> ());
  let oc = open_out "BENCH_2.json" in
  output_string oc (Dphls_host.Throughput.band_json runs);
  close_out oc;
  Printf.printf "wrote BENCH_2.json\n%!"

(* ---- PE datapath comparison: interpreted-boxed vs compiled flat ----

   The same workloads through the systolic engine twice — once with the
   kernel's compiled flat datapath (the default) and once with the
   symbolic interpreter's boxed closure ([Datapath.eval], the evaluator
   the compile pass replaces) substituted as the PE — across three
   recurrence shapes and three array widths. Wall-clock per alignment
   and cells/s per mode land in BENCH_3.json. *)
let pe_bench ?(len = 256) () =
  let shapes = [ (1, "linear"); (2, "affine"); (9, "dtw") ] in
  let widths = [ 1; 8; 32 ] in
  let time_run cfg k p w =
    ignore (Dphls_systolic.Engine.run cfg k p w) (* warm-up *);
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (Dphls_systolic.Engine.run cfg k p w);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best *. 1e9
  in
  let runs =
    List.concat_map
      (fun (id, shape) ->
        let e = Dphls_kernels.Catalog.find id in
        let rng = Dphls_util.Rng.create (seed + id) in
        let w = e.Dphls_kernels.Catalog.gen rng ~len in
        let (Registry.Packed (k, p)) = e.packed in
        let cell, bindings = Dphls_kernels.Datapaths.cell_for id in
        let interp = Datapath.eval cell bindings in
        let boxed = { k with Kernel.pe = (fun _ -> interp); pe_flat = None } in
        let cells =
          Array.length w.Workload.query * Array.length w.Workload.reference
        in
        List.map
          (fun n_pe ->
            let cfg = Dphls_systolic.Config.create ~n_pe in
            {
              Dphls_host.Throughput.kernel = Printf.sprintf "%s(#%d)" shape id;
              n_pe;
              cells;
              boxed_ns = time_run cfg boxed p w;
              compiled_ns = time_run cfg k p w;
            })
          widths)
      shapes
  in
  Dphls_util.Pretty.print_table
    ~title:
      (Printf.sprintf "PE datapath: boxed interpreter vs compiled flat (len=%d)"
         len)
    ~header:
      [ "kernel"; "N_PE"; "boxed us"; "compiled us"; "compiled Mc/s"; "speedup" ]
    (List.map
       (fun (r : Dphls_host.Throughput.pe_run) ->
         [
           r.kernel;
           string_of_int r.n_pe;
           Printf.sprintf "%.1f" (r.boxed_ns /. 1e3);
           Printf.sprintf "%.1f" (r.compiled_ns /. 1e3);
           Printf.sprintf "%.1f"
             (Dphls_host.Throughput.pe_cells_per_sec ~cells:r.cells
                ~ns:r.compiled_ns
             /. 1e6);
           Printf.sprintf "%.2fx" (Dphls_host.Throughput.pe_speedup r);
         ])
       runs);
  let speedups = List.map Dphls_host.Throughput.pe_speedup runs in
  Printf.printf "speedup min %.2fx / geomean %.2fx over %d points\n"
    (List.fold_left min infinity speedups)
    (exp
       (List.fold_left (fun a s -> a +. log s) 0.0 speedups
       /. float_of_int (List.length speedups)))
    (List.length speedups);
  let oc = open_out "BENCH_3.json" in
  output_string oc (Dphls_host.Throughput.pe_json runs);
  close_out oc;
  Printf.printf "wrote BENCH_3.json\n%!"

(* ---- prologue overlap: sequential vs overlapped staged engine ----

   A prologue-bound workload — many short alignments, where init-border
   writes and query streaming are the largest slice of each alignment's
   cycles — through the batch path twice: the sequential staged engine
   and the overlapped one (each alignment's prologue pipelined under
   its predecessor's compute, per-worker contiguous slices). Modeled
   device cycles come from the engine's batch accounting and convert to
   device wall time at the 250 MHz clock the experiment tables use —
   that is where the overlap wins wall clock, since the host simulator
   performs the same work either way and only reorders it (its own
   best-of-[reps] wall time is reported alongside, informationally).
   Everything lands in BENCH_4.json; exits non-zero if the overlapped
   total is not strictly below the sequential one — the CI smoke gate
   on the overlap machinery. *)
let overlap_bench ?(len = 32) () =
  let n_pairs = 256 and n_pe = 32 in
  let rng = Dphls_util.Rng.create seed in
  let pairs =
    Array.init n_pairs (fun _ ->
        ( Dphls_alphabet.Dna.to_string (Dphls_alphabet.Dna.random rng len),
          Dphls_alphabet.Dna.to_string (Dphls_alphabet.Dna.random rng len) ))
  in
  let engine = Dphls.Align.Systolic n_pe in
  let workers = max 2 (Domain.recommended_domain_count ()) in
  let time_best reps run =
    ignore (run ()) (* warm-up: page in the pool and the kernel *);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (run ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best *. 1e9
  in
  let seq_results = ref [||] and ov_results = ref [||] in
  let seq_host_ns =
    time_best 5 (fun () ->
        let r, _ =
          Dphls.Batch.align_all_report ~engine ~kind:Dphls.Batch.Global ~workers
            pairs
        in
        seq_results := r)
  in
  let batch = ref None in
  let overlap_host_ns =
    time_best 5 (fun () ->
        let r, _, b =
          Dphls.Batch.align_all_overlap_report ~engine ~kind:Dphls.Batch.Global
            ~workers pairs
        in
        ov_results := r;
        batch := Some b)
  in
  let b =
    match !batch with Some b -> b | None -> assert false
  in
  (* the overlapped batch must be bit-identical to the sequential one *)
  Array.iteri
    (fun i (s : Dphls.Align.alignment) ->
      let o = !ov_results.(i) in
      assert (s.Dphls.Align.score = o.Dphls.Align.score);
      assert (s.Dphls.Align.cigar = o.Dphls.Align.cigar))
    !seq_results;
  let r =
    {
      Dphls_host.Throughput.kernel = "global-linear(#1)";
      n_pe;
      alignments = b.Dphls_systolic.Engine.alignments;
      freq_mhz = 250.0;
      seq_cycles = b.Dphls_systolic.Engine.seq_cycles;
      overlapped_cycles = b.Dphls_systolic.Engine.overlapped_cycles;
      hidden_cycles = b.Dphls_systolic.Engine.hidden_cycles;
      seq_host_ns;
      overlap_host_ns;
    }
  in
  Dphls_util.Pretty.print_table
    ~title:
      (Printf.sprintf
         "Prologue overlap on %d short alignments (len=%d, N_PE=%d, %d workers)"
         n_pairs len n_pe workers)
    ~header:
      [ "mode"; "device cycles"; "hidden"; "reduction"; "device us"; "host ms" ]
    [
      [ "sequential"; string_of_int r.seq_cycles; "--"; "--";
        Printf.sprintf "%.1f"
          (Dphls_host.Throughput.overlap_device_ns r r.seq_cycles /. 1e3);
        Printf.sprintf "%.2f" (r.seq_host_ns /. 1e6) ];
      [ "overlapped"; string_of_int r.overlapped_cycles;
        string_of_int r.hidden_cycles;
        Printf.sprintf "%.1f%%"
          (100.0 *. Dphls_host.Throughput.overlap_cycle_reduction r);
        Printf.sprintf "%.1f"
          (Dphls_host.Throughput.overlap_device_ns r r.overlapped_cycles /. 1e3);
        Printf.sprintf "%.2f" (r.overlap_host_ns /. 1e6) ];
    ];
  Printf.printf
    "device wall-clock win at %.0f MHz: %.2fx (host simulator does the same \
     work either way)\n"
    r.freq_mhz
    (Dphls_host.Throughput.overlap_device_speedup r);
  let oc = open_out "BENCH_4.json" in
  output_string oc (Dphls_host.Throughput.overlap_json [ r ]);
  close_out oc;
  Printf.printf "wrote BENCH_4.json\n%!";
  if r.overlapped_cycles >= r.seq_cycles then begin
    Printf.printf
      "FAIL: overlapped cycles %d not strictly below sequential %d\n%!"
      r.overlapped_cycles r.seq_cycles;
    exit 1
  end;
  Printf.printf "overlap gate: %d -> %d modeled cycles (%.1f%% hidden)\n%!"
    r.seq_cycles r.overlapped_cycles
    (100.0 *. Dphls_host.Throughput.overlap_cycle_reduction r)

(* ---- observability overhead: sinks disabled vs enabled ----

   The zero-overhead claim of [docs/observability.md], measured: the
   systolic engine through its instrumented entry point with (a) the
   default disabled sinks, (b) an enabled counter sink, (c) enabled
   counters AND an enabled tracer. Each sample times a batch of [iters]
   alignments (so one sample is milliseconds, not microseconds) and the
   best of 9 samples is kept, which filters scheduler noise the same
   way [pe_bench] does. Exits non-zero if fully-enabled instrumentation
   costs more than 3% over the disabled baseline — the CI regression
   gate on the hot-path design (counters added once per run, spans only
   around whole phases). *)
let profile_overhead_bench ?(len = 96) () =
  let module K02 = Dphls_kernels.K02_global_affine in
  let rng = Dphls_util.Rng.create seed in
  let w =
    Workload.of_bases
      ~query:(Dphls_alphabet.Dna.random rng len)
      ~reference:(Dphls_alphabet.Dna.random rng len)
  in
  let cfg = Dphls_systolic.Config.create ~n_pe:16 in
  let iters = max 1 (2_000_000 / (len * len)) in
  let m = Dphls_obs.Metrics.create () in
  let variants =
    [|
      (fun () -> ignore (Dphls_systolic.Engine.run cfg K02.kernel K02.default w));
      (fun () ->
        Dphls_obs.Metrics.reset m;
        ignore (Dphls_systolic.Engine.run ~metrics:m cfg K02.kernel K02.default w));
      (fun () ->
        Dphls_obs.Metrics.reset m;
        let tr = Dphls_obs.Tracer.create () in
        ignore
          (Dphls_systolic.Engine.run ~metrics:m ~tracer:tr cfg K02.kernel
             K02.default w));
    |]
  in
  let sample run =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      run ()
    done;
    Unix.gettimeofday () -. t0
  in
  (* interleave the 9 sampling rounds across the three variants so a
     clock-frequency drift over the run biases none of them *)
  let best = Array.make (Array.length variants) infinity in
  Array.iter (fun run -> run ()) variants (* warm-up *);
  for _ = 1 to 9 do
    Array.iteri
      (fun i run -> best.(i) <- Float.min best.(i) (sample run))
      variants
  done;
  let ns i = best.(i) /. float_of_int iters *. 1e9 in
  let disabled_ns = ns 0 and metrics_ns = ns 1 and enabled_ns = ns 2 in
  let pct ns = (ns /. disabled_ns -. 1.0) *. 100.0 in
  Dphls_util.Pretty.print_table
    ~title:
      (Printf.sprintf "observability overhead (K02, len=%d, best of 9 x %d runs)"
         len iters)
    ~header:[ "sinks"; "ns/alignment"; "vs disabled" ]
    [
      [ "disabled (default)"; Printf.sprintf "%.0f" disabled_ns; "--" ];
      [ "metrics"; Printf.sprintf "%.0f" metrics_ns;
        Printf.sprintf "%+.2f%%" (pct metrics_ns) ];
      [ "metrics+tracer"; Printf.sprintf "%.0f" enabled_ns;
        Printf.sprintf "%+.2f%%" (pct enabled_ns) ];
    ];
  (* the gate covers the counter sink (the always-on candidate); the
     tracer row is informational — tracing is opt-in per run and pays
     for clock reads by design *)
  let gated = pct metrics_ns in
  if gated > 3.0 then begin
    Printf.printf "FAIL: counter overhead %.2f%% exceeds the 3%% budget\n%!" gated;
    exit 1
  end;
  Printf.printf
    "counter overhead within budget: %+.2f%% (limit 3%%; tracer row %+.2f%%, informational)\n%!"
    gated (pct enabled_ns)

(* ---- bit-parallel fast path: Myers engine vs compiled systolic ----
   Kernel #19 (unit-cost global edit distance, the one catalog kernel the
   Fastpath proof admits) at word-straddling query lengths. Both sides
   run through the registry backends — the exact modules [--engine]
   selects. Everything lands in BENCH_5.json; exits non-zero unless the
   bit-parallel engine is >= 5x faster at every length >= 1024 measured
   (pass --len to cap the largest length, e.g. for CI smoke). *)
let fastpath_bench ?(max_len = 8192) () =
  let module I = Dphls_engines.Engine_intf in
  let n_pe = 32 in
  let cfg = I.config ~n_pe () in
  let e = Dphls_kernels.Catalog.find 19 in
  let (Registry.Packed (k, p)) = e.packed in
  let lengths = List.filter (fun l -> l <= max_len) [ 64; 256; 1024; 8192 ] in
  let time_run ~reps run w =
    ignore (run w) (* warm-up *);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (run w);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best *. 1e9
  in
  let runs =
    List.map
      (fun len ->
        let rng = Dphls_util.Rng.create (seed + len) in
        let w = e.Dphls_kernels.Catalog.gen rng ~len in
        let qry_len, ref_len = Workload.sizes w in
        (* the systolic simulator sweeps 67M cells at len 8192; keep its
           repetitions down there so the bench stays CI-sized *)
        let reps = if len >= 4096 then 2 else 5 in
        let module Sy = Dphls_engines.Backends.Systolic in
        let module Bp = Dphls_engines.Backends.Bitpar in
        {
          Dphls_host.Throughput.fp_kernel = Printf.sprintf "global-edit(#%d)" 19;
          fp_qry_len = qry_len;
          fp_ref_len = ref_len;
          fp_cells = qry_len * ref_len;
          fp_n_pe = n_pe;
          fp_systolic_ns = time_run ~reps (fun w -> Sy.run cfg k p w) w;
          fp_bitpar_ns = time_run ~reps:5 (fun w -> Bp.run cfg k p w) w;
        })
      lengths
  in
  Dphls_util.Pretty.print_table
    ~title:
      (Printf.sprintf
         "bit-parallel fast path: Myers engine vs compiled systolic (N_PE=%d)"
         n_pe)
    ~header:
      [ "kernel"; "len"; "systolic us"; "bitpar us"; "bitpar Mc/s"; "speedup" ]
    (List.map
       (fun (r : Dphls_host.Throughput.fastpath_run) ->
         [
           r.fp_kernel;
           string_of_int r.fp_qry_len;
           Printf.sprintf "%.1f" (r.fp_systolic_ns /. 1e3);
           Printf.sprintf "%.1f" (r.fp_bitpar_ns /. 1e3);
           Printf.sprintf "%.1f"
             (Dphls_host.Throughput.pe_cells_per_sec ~cells:r.fp_cells
                ~ns:r.fp_bitpar_ns
             /. 1e6);
           Printf.sprintf "%.2fx" (Dphls_host.Throughput.fastpath_speedup r);
         ])
       runs);
  let oc = open_out "BENCH_5.json" in
  output_string oc (Dphls_host.Throughput.fastpath_json runs);
  close_out oc;
  Printf.printf "wrote BENCH_5.json\n%!";
  let gated =
    List.filter
      (fun (r : Dphls_host.Throughput.fastpath_run) -> r.fp_qry_len >= 1024)
      runs
  in
  List.iter
    (fun r ->
      let s = Dphls_host.Throughput.fastpath_speedup r in
      if s < 5.0 then begin
        Printf.printf
          "FAIL: bit-parallel speedup %.2fx < 5x at qry_len %d\n%!" s
          r.Dphls_host.Throughput.fp_qry_len;
        exit 1
      end)
    gated;
  (match gated with
  | [] ->
    Printf.printf
      "speedup gate skipped (no measured length >= 1024; pass a larger \
       --len)\n%!"
  | _ ->
    Printf.printf "bit-parallel speedup gate passed (>= 5x at len >= 1024)\n%!")

(* ---- serve soak: sustained req/s, tail latency, flat memory ----

   Replays a Zipf-skewed stream of requests from a fixed pool of
   distinct (kernel, qry, ref) lines through an in-process
   Dphls_serve.Server — the same admission/coalesce/compute path
   [dphls serve] drives, minus the file descriptors. The skew makes the
   LRU cache earn its keep (popular pairs repeat), the periodic flush
   plays the role of the daemon's batch timeout, and two VmRSS probes
   bracket the run so unbounded growth anywhere in the queue/cache
   path fails the bench. Lands in BENCH_6.json; exits non-zero if any
   request is lost, p99 misses the SLO, the cache never hits, or RSS
   grew more than 10% between the probes. *)

(* live-set RSS: compact first so the probe measures retention (what a
   leak in the queue/cache path would grow), not allocator headroom *)
let rss_kb () =
  Gc.compact ();
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec loop () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
          Scanf.sscanf
            (String.sub line 6 (String.length line - 6))
            " %d" Fun.id
        else loop ()
      | exception End_of_file -> 0
    in
    let kb = loop () in
    close_in ic;
    kb

let serve_bench ?(total = 1_000_000) () =
  let module Server = Dphls_serve.Server in
  let module Proto = Dphls_serve.Proto in
  let n_pairs = 1024 in
  let slo_p99_ms = 25.0 in
  let rng = Dphls_util.Rng.create (seed + 6) in
  let bases = [| 'A'; 'C'; 'G'; 'T' |] in
  let random_dna len =
    String.init len (fun _ -> bases.(Dphls_util.Rng.int rng 4))
  in
  (* a fixed pool of request lines: ~4% mismatch between qry and ref,
     kernel #19 (bit-parallel eligible) and #1 (systolic) interleaved *)
  let lines =
    Array.init n_pairs (fun i ->
        let len = 48 + Dphls_util.Rng.int rng 17 in
        let qry = random_dna len in
        let refs =
          String.mapi
            (fun _ c ->
              if Dphls_util.Rng.int rng 25 = 0 then
                bases.(Dphls_util.Rng.int rng 4)
              else c)
            qry
        in
        Printf.sprintf "{\"kernel\":%d,\"qry\":\"%s\",\"ref\":\"%s\"}"
          (if i mod 2 = 0 then 19 else 1)
          qry refs)
  in
  (* Zipf(s=1.1) over pair ranks, drawn by binary search on the CDF *)
  let cdf =
    let c = Array.make n_pairs 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n_pairs - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) 1.1);
      c.(i) <- !acc
    done;
    c
  in
  let zipf_total = cdf.(n_pairs - 1) in
  let draw () =
    let u = Dphls_util.Rng.float rng zipf_total in
    let lo = ref 0 and hi = ref (n_pairs - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let server =
    Server.create
      {
        (Server.default_config ()) with
        Server.slo_p99_ms = Some slo_p99_ms;
        cache_capacity = 4096;
        batch_max = 64;
      }
  in
  (* a long-lived daemon keeps its heap close to the live set; OCaml
     5.1 cannot return pages to the OS (compaction landed in 5.2), so
     without this the major heap's default 120% slack absorbs transient
     bursts as permanent RSS and the flatness gate measures the
     allocator, not the server *)
  let prior_gc = Gc.get () in
  Gc.set { prior_gc with Gc.space_overhead = 60 };
  let errors = ref 0 in
  let consume =
    List.iter (fun r ->
        match r with
        | Proto.Ok_response _ -> ()
        | Proto.Error_response _ -> incr errors)
  in
  let warmup = max 1 (min 100_000 (total / 5)) in
  let rss_first = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to total do
    consume (Server.submit server lines.(draw ()));
    (* the daemon's batch-timeout stand-in: no group coalesces forever *)
    if i mod 2048 = 0 then consume (Server.flush server);
    if i = warmup then rss_first := rss_kb ()
  done;
  consume (Server.drain server);
  let wall_s = Unix.gettimeofday () -. t0 in
  let rss_last = rss_kb () in
  let s = Server.summary server in
  Server.close server;
  let soak =
    {
      Dphls_host.Throughput.sv_requests = total;
      sv_completed = s.Server.completed;
      sv_cache_hits = s.Server.cache_hits;
      sv_rejected = s.Server.rejected;
      sv_expired = s.Server.expired;
      sv_batches = s.Server.batches;
      sv_distinct_pairs = n_pairs;
      sv_wall_s = wall_s;
      sv_p50_ms = s.Server.p50_ms;
      sv_p99_ms = s.Server.p99_ms;
      sv_max_ms = s.Server.max_ms;
      sv_slo_p99_ms = slo_p99_ms;
      sv_rss_first_kb = !rss_first;
      sv_rss_last_kb = rss_last;
    }
  in
  Dphls_util.Pretty.print_table
    ~title:
      (Printf.sprintf
         "serve soak: %d Zipf-skewed requests over %d distinct pairs" total
         n_pairs)
    ~header:[ "metric"; "value" ]
    [
      [ "completed"; string_of_int soak.sv_completed ];
      [
        "sustained req/s";
        Printf.sprintf "%.0f" (Dphls_host.Throughput.serve_req_per_sec soak);
      ];
      [
        "cache hit rate";
        Dphls_util.Pretty.percent
          (float_of_int soak.sv_cache_hits /. float_of_int soak.sv_completed);
      ];
      [ "p50"; Printf.sprintf "%.4f ms" soak.sv_p50_ms ];
      [ "p99"; Printf.sprintf "%.4f ms" soak.sv_p99_ms ];
      [ "max"; Printf.sprintf "%.4f ms" soak.sv_max_ms ];
      [ "engine batches"; string_of_int soak.sv_batches ];
      [
        "RSS first/last";
        Printf.sprintf "%d / %d kB" soak.sv_rss_first_kb soak.sv_rss_last_kb;
      ];
    ];
  let oc = open_out "BENCH_6.json" in
  output_string oc (Dphls_host.Throughput.serve_json soak);
  close_out oc;
  Printf.printf "wrote BENCH_6.json\n%!";
  if !errors > 0 then begin
    Printf.printf "FAIL: %d requests answered with an error\n%!" !errors;
    exit 1
  end;
  if soak.sv_completed <> total then begin
    Printf.printf "FAIL: %d of %d requests completed\n%!" soak.sv_completed
      total;
    exit 1
  end;
  if soak.sv_p99_ms > slo_p99_ms then begin
    Printf.printf "FAIL: p99 %.3f ms exceeds the %.1f ms SLO\n%!"
      soak.sv_p99_ms slo_p99_ms;
    exit 1
  end;
  if soak.sv_cache_hits = 0 then begin
    Printf.printf "FAIL: the result cache never hit\n%!";
    exit 1
  end;
  if
    soak.sv_rss_first_kb > 0
    && float_of_int soak.sv_rss_last_kb
       > 1.10 *. float_of_int soak.sv_rss_first_kb
  then begin
    Printf.printf "FAIL: RSS grew %d -> %d kB (> 10%%) during the soak\n%!"
      soak.sv_rss_first_kb soak.sv_rss_last_kb;
    exit 1
  end;
  Gc.set prior_gc;
  Printf.printf
    "serve soak gates passed (all completed, p99 within SLO, cache hit, \
     flat RSS)\n%!"

let () =
  let argv = Sys.argv in
  let banding_only = Array.exists (( = ) "--banding-only") argv in
  let pe_only = Array.exists (( = ) "--pe-only") argv in
  let profile_overhead = Array.exists (( = ) "--profile-overhead") argv in
  let overlap_only = Array.exists (( = ) "--overlap") argv in
  let fastpath_only = Array.exists (( = ) "--fastpath") argv in
  let serve_only = Array.exists (( = ) "--serve") argv in
  let quick = Array.exists (( = ) "--quick") argv in
  let len_opt =
    let r = ref None in
    Array.iteri
      (fun i a ->
        if a = "--len" && i + 1 < Array.length argv then
          match int_of_string_opt argv.(i + 1) with
          | Some v when v > 0 -> r := Some v
          | Some _ | None -> ())
      argv;
    !r
  in
  let band_len = Option.value len_opt ~default:512 in
  let pe_len = Option.value len_opt ~default:256 in
  if banding_only then banding_bench ~len:band_len ()
  else if pe_only then pe_bench ~len:pe_len ()
  else if profile_overhead then profile_overhead_bench ?len:len_opt ()
  else if overlap_only then overlap_bench ?len:len_opt ()
  else if fastpath_only then fastpath_bench ?max_len:len_opt ()
  else if serve_only then
    serve_bench ~total:(if quick then 100_000 else 1_000_000) ()
  else begin
    run_benchmarks ();
    Dphls_util.Pretty.section "Experiment tables (paper artifacts)";
    Dphls_experiments.Runner.run_all ();
    Dphls_util.Pretty.section "Banding comparison";
    banding_bench ~len:band_len ();
    Dphls_util.Pretty.section "PE datapath comparison";
    pe_bench ~len:pe_len ();
    Dphls_util.Pretty.section "Prologue overlap";
    overlap_bench ()
  end
